"""End-to-end sharded pipelines: generate, cloud-replay, AP-replay.

Each pipeline is a module-level worker (spawn-picklable) plus a driver
that maps it over a :class:`~repro.scale.plan.ShardPlan` through
:func:`~repro.scale.executor.run_sharded` and reduces the shard outputs.
The reduced results are invariant to the shard count and the number of
worker processes -- asserted by ``tests/test_scale.py`` -- which is what
makes ``--jobs`` a pure wall-clock knob.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.ap.benchrig import ApBenchmarkReport, ApBenchmarkRig
from repro.ap.models import BENCHMARKED_APS
from repro.ap.smartap import ApPreDownloadResult, SmartAP
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.policies import DEFAULT_POLICIES
from repro.obs.registry import (
    AnyRegistry,
    MetricsRegistry,
    NOOP,
    merge_registries,
)
from repro.recovery.durable import (
    RecoveryConfig,
    durable_map,
    worker_identity,
)
from repro.scale.executor import ScaleRunInfo, run_sharded
from repro.scale.plan import ShardPlan, ShardSpec
from repro.scale.reducers import merge_workloads
from repro.scale.replay import ShardReplay, ShardRunStats, merge_stats
from repro.scale.shardgen import UserDirectory, generate_shard
from repro.transfer.source import SourceModel
from repro.workload.catalog import FileCatalog
from repro.workload.generator import Workload
from repro.workload.records import RequestRecord


# -- workload generation -------------------------------------------------------

def generate_shard_worker(spec: ShardSpec) -> Workload:
    """Spawn-safe worker: synthesise one shard's sub-workload."""
    return generate_shard(spec)


def sharded_generate(plan: ShardPlan, *, jobs: int = 1,
                     metrics: AnyRegistry = NOOP,
                     recovery: Optional[RecoveryConfig] = None
                     ) -> tuple[Workload, ScaleRunInfo]:
    """Generate the week across shards and merge the sub-workloads."""
    parts, info = run_sharded(plan, generate_shard_worker, jobs=jobs,
                              metrics=metrics, recovery=recovery)
    return merge_workloads(plan, parts), info


# -- cloud replay --------------------------------------------------------------

def replay_shard_worker(spec: ShardSpec, plan_json: str = "",
                        policies_on: bool = True
                        ) -> tuple[ShardRunStats, MetricsRegistry]:
    """Spawn-safe worker: generate one shard and replay it.

    Returns the shard's mergeable stats plus the worker-local metrics
    registry (clock stripped on pickling) so the parent can fold every
    worker's instruments into one registry.

    ``plan_json`` carries an optional serialised :class:`FaultPlan`
    (strings pickle cheaply and identically to every worker); the
    plan's deterministic per-entity gating keeps the merged result
    independent of the shard/job split.  ``policies_on`` toggles the
    resilience policies for that plan.
    """
    registry = MetricsRegistry()
    workload = generate_shard(spec, metrics=registry)
    directory = UserDirectory(spec.seed, spec.plan.user_count)
    faults = FaultInjector(FaultPlan.from_json(plan_json),
                           metrics=registry) if plan_json else None
    replay = ShardReplay(metrics=registry, faults=faults,
                         policies=DEFAULT_POLICIES if policies_on
                         and faults is not None else None)
    stats = replay.run(workload, user_lookup=directory.by_id)
    return stats, registry


def sharded_cloud_stats(plan: ShardPlan, *, jobs: int = 1,
                        metrics: AnyRegistry = NOOP,
                        fault_plan: Optional[FaultPlan] = None,
                        policies_on: bool = True,
                        recovery: Optional[RecoveryConfig] = None
                        ) -> tuple[ShardRunStats, ScaleRunInfo]:
    """Generate + replay the whole week shard-by-shard; merge the stats.

    Worker registries are merged into ``metrics`` (when it is a real
    registry) so shard-local counters and the executor's wall gauges
    land in one place.  ``fault_plan`` injects a chaos schedule into
    every shard (merged results stay split-invariant); ``policies_on``
    enables the default resilience policies against it.  ``recovery``
    makes the run durable and resumable (see ``repro.recovery``).
    """
    worker = replay_shard_worker if fault_plan is None else \
        functools.partial(replay_shard_worker,
                          plan_json=fault_plan.to_json(),
                          policies_on=policies_on)
    parts, info = run_sharded(plan, worker, jobs=jobs,
                              metrics=metrics, recovery=recovery)
    stats = merge_stats([stats for stats, _registry in parts])
    if metrics.enabled:
        for _stats, registry in parts:
            metrics.merge(registry)
    return stats, info


# -- AP replay -----------------------------------------------------------------

@dataclass(frozen=True)
class ApReplayTask:
    """Spawn-safe payload: one AP's share of a replay campaign.

    The sequential rig deals requests round-robin (``index % len(aps)``)
    and keeps all cross-request state (RNG stream, clock, storage) per
    AP, so replaying AP ``k``'s slice ``requests[k::n]`` alone
    reproduces its sequential results exactly.

    The slice travels one of two ways: ``requests`` carries the record
    objects themselves (pickled to the worker), or ``requests_trace``
    names a columnar ``.col`` file plus the slice's row indices -- the
    worker memory-maps the shared trace and decodes only its own rows,
    so nothing request-sized crosses the process boundary.
    """

    ap_index: int
    ap_count: int
    catalog_files: tuple                 # CatalogFile records referenced
    requests: tuple                      # this AP's slice, in order
    seed: int
    throttle_to_user: bool = True
    requests_trace: tuple = ()           # (path, row indices) alternative


def ap_replay_worker(task: ApReplayTask) -> list[ApPreDownloadResult]:
    """Replay one AP's slice on a single-AP rig."""
    catalog = FileCatalog()
    for record in task.catalog_files:
        catalog.files[record.file_id] = record
    if task.requests_trace:
        from repro.traceio import ColumnarTrace
        path, indices = task.requests_trace
        requests = ColumnarTrace(path).take(indices)
    else:
        requests = list(task.requests)
    hardware = BENCHMARKED_APS[task.ap_index]
    rig = ApBenchmarkRig(
        catalog, aps=[SmartAP(hardware, source_model=SourceModel())],
        seed=task.seed)
    report = rig.replay(requests,
                        throttle_to_user=task.throttle_to_user)
    return report.results


def sharded_ap_replay(catalog: FileCatalog,
                      requests: Sequence[RequestRecord], *,
                      jobs: int = 1, seed: int = 20150301,
                      throttle_to_user: bool = True,
                      metrics: AnyRegistry = NOOP,
                      recovery: Optional[RecoveryConfig] = None,
                      requests_trace: Optional[tuple] = None
                      ) -> tuple[ApBenchmarkReport, ScaleRunInfo]:
    """Replay the AP campaign with one process per benchmarked AP.

    Results are reassembled into the sequential round-robin order, so
    the merged report is identical to ``ApBenchmarkRig.replay`` on the
    full request sequence (per-AP RNG streams and clocks are
    self-contained).  ``jobs`` caps worker processes; the fan-out is
    fixed at one task per AP.  Routed through
    :func:`~repro.recovery.durable.durable_map`, so a killed or hung
    worker costs a bounded requeue and ``recovery`` makes the campaign
    durable/resumable with per-AP checkpoints.

    ``requests_trace`` -- ``(path, row_indices)`` naming ``requests``'
    rows in a columnar ``.col`` trace -- switches the workers to
    zero-copy mode: each memory-maps the shared trace and decodes only
    its own slice instead of unpickling the request objects.  The
    replay itself (and its results) is identical either way.
    """
    if not requests:
        raise ValueError("nothing to replay")
    ap_count = len(BENCHMARKED_APS)
    needed = {request.file_id for request in requests}
    files = tuple(record for record in catalog if record.file_id in needed)
    if requests_trace is not None:
        trace_path, rows = requests_trace
        if len(rows) != len(requests):
            raise ValueError("requests_trace indices must cover exactly "
                             "the requests being replayed")
        tasks = [ApReplayTask(
            ap_index=index, ap_count=ap_count, catalog_files=files,
            requests=(), seed=seed, throttle_to_user=throttle_to_user,
            requests_trace=(str(trace_path),
                            tuple(rows[index::ap_count])))
            for index in range(ap_count)
            if rows[index::ap_count]]
    else:
        tasks = [ApReplayTask(ap_index=index, ap_count=ap_count,
                              catalog_files=files,
                              requests=tuple(requests[index::ap_count]),
                              seed=seed,
                              throttle_to_user=throttle_to_user)
                 for index in range(ap_count)
                 if requests[index::ap_count]]
    identity = {
        "kind": "ap-replay",
        "seed": seed,
        "throttle_to_user": throttle_to_user,
        "requests": len(requests),
        "ap_count": ap_count,
        "worker": worker_identity(ap_replay_worker),
    }
    started = time.perf_counter()
    outcome = durable_map(
        [f"ap-{task.ap_index:02d}" for task in tasks], tasks,
        ap_replay_worker, jobs=jobs, recovery=recovery,
        identity=identity, metrics=metrics)
    wall = time.perf_counter() - started

    merged: list[Optional[ApPreDownloadResult]] = [None] * len(requests)
    for task, results in zip(tasks, outcome.results):
        for position, result in enumerate(results):
            merged[task.ap_index + position * ap_count] = result
    assert all(result is not None for result in merged)
    report = ApBenchmarkReport(list(merged))      # type: ignore[arg-type]
    _record_ap_metrics(report, metrics)
    info = ScaleRunInfo(jobs=jobs, shards=len(tasks),
                        wall_seconds=wall, shard_walls=(wall,),
                        reused_shards=len(outcome.reused),
                        shard_retries=outcome.retries)
    metrics.gauge("repro_scale_ap_wall_seconds").set(wall)
    return report, info


def _record_ap_metrics(report: ApBenchmarkReport,
                       metrics: AnyRegistry) -> None:
    """Mirror the sequential rig's instruments for a merged report."""
    if not metrics.enabled:
        return
    replays = metrics.counter("repro_ap_replays_total")
    iowait = metrics.histogram("repro_ap_iowait_ratio")
    write_rate = metrics.histogram(
        "repro_ap_write_throughput_bytes_per_second")
    for result in report.results:
        replays.inc()
        if result.record.success:
            iowait.observe(result.iowait_ratio)
            write_rate.observe(result.record.average_speed)
        else:
            metrics.counter(
                "repro_ap_failures_total",
                cause=result.record.failure_cause or "unknown").inc()
