"""Reducers: folding per-shard outputs back into whole-week results.

Every reducer here is order-independent up to floating-point summation,
so the merged result is the same whatever order shards finish in.  The
shard invariance tests (``tests/test_scale.py``) assert the stronger
property: merged output at any shard count equals the 1-shard run.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.cdf import CDF, empirical_cdf
from repro.obs.registry import merge_registries
from repro.scale.plan import ShardPlan
from repro.scale.replay import ShardRunStats, merge_stats
from repro.workload.catalog import FileCatalog
from repro.workload.generator import Workload
from repro.workload.records import User

__all__ = [
    "merge_workloads",
    "merge_cdfs",
    "merge_stats",
    "merge_registries",
    "ShardRunStats",
]


def merge_workloads(plan: ShardPlan,
                    parts: Sequence[Workload]) -> Workload:
    """Union of per-shard sub-workloads into one whole-week trace.

    Files and users are disjoint by construction (each entity lives in
    exactly one shard); requests are re-sorted into the global arrival
    order.  The result is byte-identical for any shard count because
    every record is derived from its entity's own fork.
    """
    if not parts:
        raise ValueError("nothing to merge")
    catalog = FileCatalog()
    users: list[User] = []
    requests = []
    for part in parts:
        for record in part.catalog:
            if record.file_id in catalog.files:
                raise ValueError(
                    f"file {record.file_id} appears in two shards")
        catalog.files.update(part.catalog.files)
        users.extend(part.users)
        requests.extend(part.requests)
    seen_users = {user.user_id for user in users}
    if len(seen_users) != len(users):
        raise ValueError("user owned by two shards")
    users.sort(key=lambda user: user.user_id)
    requests.sort(key=lambda request: (request.request_time,
                                       request.task_id))
    return Workload(config=plan.workload_config, catalog=catalog,
                    users=users, requests=requests)


def merge_cdfs(parts: Iterable[CDF]) -> CDF:
    """Pool per-shard empirical distributions into one CDF.

    An empirical CDF is fully determined by its sample multiset, so
    concatenating the shards' samples and re-sorting (inside
    :func:`empirical_cdf`) is the exact reduction.
    """
    values: list[np.ndarray] = [part.values for part in parts]
    if not values:
        raise ValueError("nothing to merge")
    return empirical_cdf(np.concatenate(values))
