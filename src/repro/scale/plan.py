"""Shard plans: partitioning a measurement week into independent parts.

A :class:`ShardPlan` splits the week's entity index spaces -- file
indices ``0..file_count`` and user indices ``0..user_count`` -- into
``shards`` disjoint sub-workloads by **stable content hash** of the
entity index.  Two properties make the partition safe to parallelise:

* *Stability*: shard membership depends only on the entity index and the
  shard count (SHA-256, never Python's salted ``hash()``), so the same
  plan produces the same partition on every platform, process, and run.
* *Entity-keyed randomness*: every attribute an entity ever draws comes
  from its own :meth:`~repro.sim.randomness.RngFactory.fork` keyed by
  the entity index -- not from a sequential shared stream -- so the union
  of the shards' outputs is bit-identical for **any** shard count and
  any worker scheduling (see ``repro.scale.shardgen``).

Requests are sharded *by content*: all requests of one file live in the
file's shard.  Cache lookups, in-flight coalescing, and swarm state are
per-file, so content sharding keeps every cache-coupled interaction
inside a single shard.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

from repro.sim.clock import WEEK
from repro.workload.generator import WorkloadConfig

#: Default shard count: fixed (not derived from ``--jobs``) so results
#: never depend on how many workers happened to run.
DEFAULT_SHARDS = 8


def stable_hash(text: str) -> int:
    """Platform-stable 64-bit hash of a string (first 8 SHA-256 bytes)."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class ShardSpec:
    """One shard's share of a plan -- the spawn-safe worker payload.

    Frozen and built only from primitives, so it pickles cheaply into a
    ``ProcessPoolExecutor`` worker and fully determines that worker's
    output.
    """

    shard: int
    shards: int
    scale: float
    seed: int
    horizon: float = WEEK

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if not 0 <= self.shard < self.shards:
            raise ValueError(
                f"shard {self.shard} outside [0, {self.shards})")

    @property
    def plan(self) -> "ShardPlan":
        return ShardPlan(scale=self.scale, seed=self.seed,
                         shards=self.shards, horizon=self.horizon)

    @property
    def workload_config(self) -> WorkloadConfig:
        return WorkloadConfig(scale=self.scale, seed=self.seed,
                              horizon=self.horizon)

    def file_indices(self) -> Iterator[int]:
        """Ascending file indices owned by this shard."""
        plan = self.plan
        for index in range(plan.file_count):
            if plan.shard_of_file(index) == self.shard:
                yield index

    def user_indices(self) -> Iterator[int]:
        """Ascending user indices owned by this shard."""
        plan = self.plan
        for index in range(plan.user_count):
            if plan.shard_of_user(index) == self.shard:
                yield index


@dataclass(frozen=True)
class ShardPlan:
    """Partition of one measurement week into independent shards."""

    scale: float = 0.02
    seed: int = 20150222
    shards: int = DEFAULT_SHARDS
    horizon: float = WEEK

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")

    @property
    def workload_config(self) -> WorkloadConfig:
        return WorkloadConfig(scale=self.scale, seed=self.seed,
                              horizon=self.horizon)

    @property
    def file_count(self) -> int:
        return self.workload_config.file_count

    @property
    def user_count(self) -> int:
        return self.workload_config.user_count

    def shard_of_file(self, file_index: int) -> int:
        """Owning shard of a file index (hence of all its requests)."""
        return stable_hash(f"file:{file_index}") % self.shards

    def shard_of_user(self, user_index: int) -> int:
        return stable_hash(f"user:{user_index}") % self.shards

    def spec(self, shard: int) -> ShardSpec:
        return ShardSpec(shard=shard, shards=self.shards,
                         scale=self.scale, seed=self.seed,
                         horizon=self.horizon)

    def specs(self) -> list[ShardSpec]:
        """All shard payloads, in shard order."""
        return [self.spec(shard) for shard in range(self.shards)]
