"""Process-pool map over shard specs, with deterministic reduction order.

The executor runs a module-level worker function over the plan's
:class:`~repro.scale.plan.ShardSpec` payloads -- inline when
``jobs <= 1``, in a spawn-context process pool otherwise -- and hands
the results back **in shard order**, whatever order workers finish in.
Shard outputs are scheduling-independent by construction (every shard's
randomness is self-contained), so the only thing parallelism may change
is wall-clock time; that is recorded per shard into the obs registry.

Failure tolerance is delegated to
:func:`repro.recovery.durable.durable_map`: a worker that dies
(``BrokenProcessPool``) or hangs past the watchdog costs its shard a
bounded requeue, never the run; with a
:class:`~repro.recovery.durable.RecoveryConfig` every finished shard is
checkpointed into a run directory and an interrupted or crashed run
resumes bit-identically (see ``repro.recovery``).

Spawn (not fork) is used everywhere: it is the only start method that
exists on all supported platforms, and it guarantees workers import a
fresh interpreter state instead of inheriting arbitrary parent state --
the same reason worker callables must be module-level functions and
payloads must be picklable primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, TypeVar

from repro.obs.registry import AnyRegistry, NOOP
from repro.recovery.durable import (
    RecoveryConfig,
    durable_map,
    worker_identity,
)
from repro.scale.plan import ShardPlan, ShardSpec

R = TypeVar("R")

ShardWorker = Callable[[ShardSpec], R]


def shard_key(shard: int) -> str:
    """The stable checkpoint key of one shard (``shard-0007``)."""
    return f"shard-{shard:04d}"


@dataclass(frozen=True)
class ScaleRunInfo:
    """Timing record of one sharded map (feeds obs + BENCH_scale.json).

    ``reused_shards`` counts checkpoints a resume loaded instead of
    recomputing (their ``shard_walls`` entries are 0.0);
    ``shard_retries`` counts requeued attempts after worker loss.
    """

    jobs: int
    shards: int
    wall_seconds: float
    shard_walls: tuple[float, ...]
    reused_shards: int = 0
    shard_retries: int = 0

    @property
    def work_seconds(self) -> float:
        """Total worker CPU-side wall across shards (serial-equivalent)."""
        return sum(self.shard_walls)

    def to_dict(self) -> dict[str, Any]:
        return {"jobs": self.jobs, "shards": self.shards,
                "wall_seconds": self.wall_seconds,
                "work_seconds": self.work_seconds,
                "shard_walls": list(self.shard_walls),
                "reused_shards": self.reused_shards,
                "shard_retries": self.shard_retries}


def run_sharded(plan: ShardPlan, worker: ShardWorker, *,
                jobs: int = 1,
                metrics: AnyRegistry = NOOP,
                recovery: Optional[RecoveryConfig] = None
                ) -> tuple[list[Any], ScaleRunInfo]:
    """Map ``worker`` over the plan's shards; reduce in shard order.

    ``worker`` must be a module-level function (spawn-picklable) taking
    one :class:`ShardSpec`.  Worker exceptions propagate to the caller;
    worker *deaths* and hangs are retried within a bounded budget (see
    :mod:`repro.recovery.durable`).  With ``recovery`` the run is
    durable: completed shards are checkpointed under
    ``recovery.run_dir`` and a resume recomputes only missing/corrupt
    shards, yielding results bit-identical to an uninterrupted run.

    Per-shard wall times land in the registry as
    ``repro_scale_shard_wall_seconds`` gauges; the map's own wall time
    as ``repro_scale_wall_seconds``.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    import time
    specs = plan.specs()
    identity = {
        "kind": "sharded-map",
        "scale": plan.scale,
        "seed": plan.seed,
        "shards": plan.shards,
        "horizon": plan.horizon,
        "worker": worker_identity(worker),
    }
    started = time.perf_counter()
    outcome = durable_map(
        [shard_key(spec.shard) for spec in specs], specs, worker,
        jobs=jobs, recovery=recovery, identity=identity,
        metrics=metrics)
    wall = time.perf_counter() - started

    metrics.gauge("repro_scale_jobs").set(jobs)
    metrics.gauge("repro_scale_shards").set(plan.shards)
    metrics.gauge("repro_scale_wall_seconds").set(wall)
    for spec, shard_wall in zip(specs, outcome.walls):
        metrics.gauge("repro_scale_shard_wall_seconds",
                      shard=spec.shard).set(shard_wall)
    info = ScaleRunInfo(
        jobs=jobs, shards=plan.shards, wall_seconds=wall,
        shard_walls=tuple(outcome.walls),
        reused_shards=len(outcome.reused),
        shard_retries=outcome.retries)
    return outcome.results, info
