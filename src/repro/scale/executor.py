"""Process-pool map over shard specs, with deterministic reduction order.

The executor is deliberately dumb: it runs a module-level worker
function over the plan's :class:`~repro.scale.plan.ShardSpec` payloads
-- inline when ``jobs <= 1``, in a spawn-context
:class:`~concurrent.futures.ProcessPoolExecutor` otherwise -- and hands
the results back **in shard order**, whatever order workers finish in.
Shard outputs are scheduling-independent by construction (every shard's
randomness is self-contained), so the only thing parallelism may change
is wall-clock time; that is recorded per shard into the obs registry.

Spawn (not fork) is used everywhere: it is the only start method that
exists on all supported platforms, and it guarantees workers import a
fresh interpreter state instead of inheriting arbitrary parent state --
the same reason worker callables must be module-level functions and
payloads must be picklable primitives.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.obs.registry import AnyRegistry, NOOP
from repro.scale.plan import ShardPlan, ShardSpec

R = TypeVar("R")

ShardWorker = Callable[[ShardSpec], R]


@dataclass(frozen=True)
class ScaleRunInfo:
    """Timing record of one sharded map (feeds obs + BENCH_scale.json)."""

    jobs: int
    shards: int
    wall_seconds: float
    shard_walls: tuple[float, ...]

    @property
    def work_seconds(self) -> float:
        """Total worker CPU-side wall across shards (serial-equivalent)."""
        return sum(self.shard_walls)

    def to_dict(self) -> dict[str, Any]:
        return {"jobs": self.jobs, "shards": self.shards,
                "wall_seconds": self.wall_seconds,
                "work_seconds": self.work_seconds,
                "shard_walls": list(self.shard_walls)}


def _timed_call(worker: ShardWorker, spec: ShardSpec
                ) -> tuple[int, float, Any]:
    """Run one shard; returns (shard index, wall seconds, result)."""
    started = time.perf_counter()
    result = worker(spec)
    return spec.shard, time.perf_counter() - started, result


def run_sharded(plan: ShardPlan, worker: ShardWorker, *,
                jobs: int = 1,
                metrics: AnyRegistry = NOOP
                ) -> tuple[list[Any], ScaleRunInfo]:
    """Map ``worker`` over the plan's shards; reduce in shard order.

    ``worker`` must be a module-level function (spawn-picklable) taking
    one :class:`ShardSpec`.  Worker exceptions propagate to the caller.
    Returns the per-shard results indexed by shard plus the timing
    record.  Per-shard wall times land in the registry as
    ``repro_scale_shard_wall_seconds`` gauges; the map's own wall time
    as ``repro_scale_wall_seconds``.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    specs = plan.specs()
    started = time.perf_counter()
    if jobs <= 1 or plan.shards <= 1:
        timed = [_timed_call(worker, spec) for spec in specs]
    else:
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
                max_workers=min(jobs, plan.shards),
                mp_context=context) as pool:
            futures = [pool.submit(_timed_call, worker, spec)
                       for spec in specs]
            timed = [future.result() for future in futures]
    wall = time.perf_counter() - started
    timed.sort(key=lambda item: item[0])

    metrics.gauge("repro_scale_jobs").set(jobs)
    metrics.gauge("repro_scale_shards").set(plan.shards)
    metrics.gauge("repro_scale_wall_seconds").set(wall)
    for shard, shard_wall, _result in timed:
        metrics.gauge("repro_scale_shard_wall_seconds",
                      shard=shard).set(shard_wall)
    info = ScaleRunInfo(
        jobs=jobs, shards=plan.shards, wall_seconds=wall,
        shard_walls=tuple(shard_wall for _s, shard_wall, _r in timed))
    return [result for _shard, _wall, result in timed], info
