"""Parallel experiment runner: independent driver groups in processes.

The sequential runner executes all drivers against one shared
:class:`~repro.experiments.context.ExperimentContext`; several drivers
*mutate* shared artefacts (the ODR replays write into the cloud's
content database), so drivers cannot be scattered across processes
one-by-one.  Instead the registry is partitioned into **groups** with
disjoint artefact needs; each group gets a fresh context in its own
process and rebuilds exactly the artefacts it reads.  Because a group's
results never depend on any other group, the merged document is
independent of ``--jobs`` -- the ``--jobs`` path (including ``--jobs 1``)
always routes through this runner so the number of workers is a pure
wall-clock knob.

The cost of isolation is rebuild work: the workload (and for most
groups the cloud run) is re-simulated per group.  That overhead is
bounded by the group count and amortises at the full-trace scales this
subsystem exists for.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.base import ExperimentReport
from repro.experiments.context import ExperimentContext, \
    ExperimentFailure
from repro.obs.registry import AnyRegistry, NOOP
from repro.recovery.durable import (
    RecoveryConfig,
    durable_map,
    worker_identity,
)

#: Driver groups with disjoint mutable-artefact footprints.  Order maps
#: group name -> (experiment ids in document order, context artefacts the
#: group warms up front).  ``claims`` re-evaluates the scorecard claims
#: on a fresh context (the sequential path evaluates them on the shared,
#: already-replayed context; a fresh context is the reproducible
#: definition).
GROUPS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "workload": (("workload_stats", "fig05", "fig06_07"),
                 ("workload",)),
    "cloud": (("fig08", "fig09", "fig10", "fig11", "cloud_text"),
              ("cloud_result",)),
    "ap": (("table1", "fig13_14", "ap_failures", "table2"),
           ("cloud_result", "ap_report")),
    "odr": (("fig16", "fig17"),
            ("cloud_result", "ap_report", "odr_result")),
    # The backend matrix builds its own trace and databases (nothing
    # shared, nothing mutated), so it forms a group of its own.
    "backends": (("backend_matrix",), ()),
    "claims": ((), ("cloud_result",)),
}


def check_group_coverage() -> None:
    """Assert GROUPS and the document ORDER cover the same registry.

    Raises at run (and test) time when an experiment is registered but
    not grouped, grouped twice, or grouped but unknown -- the drift guard
    that keeps the parallel document identical to the sequential one.
    """
    from repro.experiments import REGISTRY
    from repro.experiments.runner import ORDER
    grouped: list[str] = []
    for ids, _warm in GROUPS.values():
        grouped.extend(ids)
    duplicates = sorted({eid for eid in grouped
                         if grouped.count(eid) > 1})
    if duplicates:
        raise RuntimeError(f"experiments grouped twice: {duplicates}")
    missing = sorted(set(ORDER) - set(grouped))
    if missing:
        raise RuntimeError(
            f"experiments not covered by scale.runner.GROUPS: {missing}")
    unknown = sorted(set(grouped) - set(REGISTRY))
    if unknown:
        raise RuntimeError(f"GROUPS references unknown experiments: "
                           f"{unknown}")
    ungrouped = sorted(set(REGISTRY) - set(grouped) - set(ORDER))
    if ungrouped:
        raise RuntimeError(
            f"registered experiments outside ORDER and GROUPS: "
            f"{ungrouped}")


@dataclass(frozen=True)
class GroupTask:
    """Spawn-safe payload: one driver group at one (scale, seed)."""

    group: str
    scale: float
    seed: int


@dataclass
class GroupResult:
    """One group's reports (document order) and timings."""

    group: str
    reports: list[tuple[str, ExperimentReport]]
    timings: dict[str, float]
    claims: Optional[list] = None
    wall_seconds: float = 0.0
    failures: list[ExperimentFailure] = field(default_factory=list)


def run_group(task: GroupTask) -> GroupResult:
    """Build a fresh context and run one group's drivers in order."""
    from repro.experiments import REGISTRY
    started = time.perf_counter()
    context = ExperimentContext(scale=task.scale, seed=task.seed)
    ids, warm = GROUPS[task.group]
    context.warm(*warm)
    result = GroupResult(group=task.group, reports=[], timings={})
    for experiment_id in ids:
        t0 = time.perf_counter()
        try:
            report = REGISTRY[experiment_id](context)
        except Exception as error:   # noqa: BLE001 - degrade, not die
            # Mirror the sequential runner: one broken driver becomes a
            # failure entry and the rest of the group still runs.
            result.failures.append(ExperimentFailure(
                experiment_id=experiment_id,
                error=f"{type(error).__name__}: {error}",
                traceback=traceback.format_exc()))
            continue
        result.timings[experiment_id] = time.perf_counter() - t0
        result.reports.append((experiment_id, report))
    if task.group == "claims":
        from repro.experiments.scorecard import evaluate_claims
        result.claims = evaluate_claims(context)
    result.wall_seconds = time.perf_counter() - started
    return result


def run_parallel(scale: float, seed: int, *, jobs: int = 1,
                 metrics: AnyRegistry = NOOP,
                 recovery: Optional[RecoveryConfig] = None
                 ) -> tuple[list[ExperimentReport], list,
                            dict[str, float],
                            list[ExperimentFailure]]:
    """Run every experiment via the group partition.

    Returns ``(reports in document order, headline claims, timings,
    failures)``.  The output is independent of ``jobs``; with
    ``jobs <= 1`` the groups run inline (no processes), which is also
    the reference behaviour the invariance tests compare against.

    With ``recovery`` each finished group is checkpointed into the run
    directory (``group-<name>``), so a crashed or interrupted document
    build resumes by recomputing only the groups that never completed
    -- the completed sections come back bit-identical from their
    checkpoints.
    """
    from repro.experiments.runner import ORDER
    check_group_coverage()
    tasks = [GroupTask(group=group, scale=scale, seed=seed)
             for group in GROUPS]
    identity = {
        "kind": "experiment-groups",
        "scale": scale,
        "seed": seed,
        "groups": list(GROUPS),
        "worker": worker_identity(run_group),
    }
    started = time.perf_counter()
    outcome = durable_map(
        [f"group-{task.group}" for task in tasks], tasks, run_group,
        jobs=jobs, recovery=recovery, identity=identity,
        metrics=metrics)
    results = outcome.results
    wall = time.perf_counter() - started

    by_id: dict[str, ExperimentReport] = {}
    timings: dict[str, float] = {}
    claims: list = []
    failures: list[ExperimentFailure] = []
    for result in results:
        for experiment_id, report in result.reports:
            by_id[experiment_id] = report
        timings.update(result.timings)
        failures.extend(result.failures)
        if result.claims is not None:
            claims = result.claims
        metrics.gauge("repro_scale_group_wall_seconds",
                      group=result.group).set(result.wall_seconds)
    metrics.gauge("repro_scale_jobs").set(jobs)
    metrics.gauge("repro_scale_wall_seconds").set(wall)
    failures.sort(key=lambda failure: failure.experiment_id)
    ordered = [by_id[experiment_id] for experiment_id in ORDER
               if experiment_id in by_id]
    extras = [by_id[experiment_id] for experiment_id in sorted(by_id)
              if experiment_id not in ORDER]
    return ordered + extras, claims, timings, failures
