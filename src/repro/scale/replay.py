"""Admission-free cloud replay with per-file randomness.

The event-driven :class:`~repro.cloud.system.XuanfengCloud` is the
reference model, but it cannot be sharded exactly: its tasks share one
RNG stream in event order, its preseed shuffles the whole catalog, and
upload admission couples every fetch through the per-ISP reservation
pools.  :class:`ShardReplay` is the scale-out counterpart: the same
pipeline (cache lookup with in-flight coalescing -> pre-download session
-> think-time lag -> fetch over the privileged path), but with **all** of
a file's randomness drawn from the file's own
:meth:`~repro.sim.randomness.RngFactory.fork`, so any content-sharded
partition of the request trace replays to the bit-identical union.

Deliberate divergence from the reference model (kept because admission
state is global by nature): fetches are never *rejected* -- the flow rate
is the same privileged/alternative-path speed the uploading servers
would grant, but upload-capacity exhaustion is not modelled.  Admission
effects stay the event-driven engine's job; the sharded replay is for
full-trace-scale distribution and burden studies where rejection is a
sub-percent correction.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Optional

import math

import numpy as np

from repro.analysis.timeseries import bin_rate_series
from repro.cloud.config import CloudConfig
from repro.cloud.fetch import FetchSpeedModel
from repro.faults.injector import FaultInjector
from repro.faults.policies import ResiliencePolicies
from repro.netsim.isp import ISP, MAJOR_ISPS
from repro.netsim.topology import ChinaTopology, PathQuality
from repro.obs.histogram import QuantileSketch
from repro.obs.registry import AnyRegistry, NOOP
from repro.paper import IMPEDED_FETCH_THRESHOLD
from repro.sim.randomness import RngFactory
from repro.transfer.session import DownloadOutcome, DownloadSession, \
    SessionLimits
from repro.transfer.source import CLOUD_VANTAGE, ContentSource, SourceModel
from repro.workload.generator import Workload
from repro.workload.popularity import PopularityClass
from repro.workload.records import CatalogFile, RequestRecord, User

#: Bin width of the merged upload-burden series (matches Fig. 11).
BURDEN_BIN_WIDTH = 300.0


@dataclass
class ShardRunStats:
    """Mergeable result of replaying one shard (or a whole week).

    Everything in here is either additive (counts, sums, flow bins) or a
    :class:`QuantileSketch` with an exact, order-independent merge -- so
    ``merge`` over any partition reproduces the 1-shard stats (floating
    sums up to summation order, which the equality check tolerates).
    """

    horizon: float
    bin_width: float = BURDEN_BIN_WIDTH
    tasks: int = 0
    lookups: int = 0
    hits: int = 0
    attempts: int = 0
    attempt_failures: int = 0
    failures: int = 0
    totals_by_class: dict[PopularityClass, int] = field(default_factory=dict)
    failures_by_class: dict[PopularityClass, int] = \
        field(default_factory=dict)
    pre_speed: QuantileSketch = field(default_factory=QuantileSketch)
    pre_delay: QuantileSketch = field(default_factory=QuantileSketch)
    fetch_speed: QuantileSketch = field(default_factory=QuantileSketch)
    fetch_delay: QuantileSketch = field(default_factory=QuantileSketch)
    e2e_delay: QuantileSketch = field(default_factory=QuantileSketch)
    fetch_count: int = 0
    impeded_fetches: int = 0
    payload_bytes: float = 0.0
    traffic_bytes: float = 0.0
    pre_traffic_bytes: float = 0.0
    # Resilience scoreboard (all zero when no faults are injected).
    fault_impacts: int = 0
    fault_retries: int = 0
    fault_failovers: int = 0
    fault_aborts: int = 0
    fault_recoveries: int = 0
    burden_bins: np.ndarray = field(
        default_factory=lambda: np.zeros(0))

    def __post_init__(self):
        if len(self.burden_bins) == 0:
            bins = int(math.ceil(self.horizon / self.bin_width))
            self.burden_bins = np.zeros(max(bins, 1))

    # -- reduction -------------------------------------------------------------

    def merge(self, other: "ShardRunStats") -> None:
        """Fold another shard's stats in (order-independent)."""
        if not math.isclose(other.horizon, self.horizon):
            raise ValueError("cannot merge stats of different horizons")
        if not math.isclose(other.bin_width, self.bin_width):
            raise ValueError("cannot merge stats of different bin widths")
        self.tasks += other.tasks
        self.lookups += other.lookups
        self.hits += other.hits
        self.attempts += other.attempts
        self.attempt_failures += other.attempt_failures
        self.failures += other.failures
        for klass, count in other.totals_by_class.items():
            self.totals_by_class[klass] = \
                self.totals_by_class.get(klass, 0) + count
        for klass, count in other.failures_by_class.items():
            self.failures_by_class[klass] = \
                self.failures_by_class.get(klass, 0) + count
        self.pre_speed.merge(other.pre_speed)
        self.pre_delay.merge(other.pre_delay)
        self.fetch_speed.merge(other.fetch_speed)
        self.fetch_delay.merge(other.fetch_delay)
        self.e2e_delay.merge(other.e2e_delay)
        self.fetch_count += other.fetch_count
        self.impeded_fetches += other.impeded_fetches
        self.payload_bytes += other.payload_bytes
        self.traffic_bytes += other.traffic_bytes
        self.pre_traffic_bytes += other.pre_traffic_bytes
        self.fault_impacts += other.fault_impacts
        self.fault_retries += other.fault_retries
        self.fault_failovers += other.fault_failovers
        self.fault_aborts += other.fault_aborts
        self.fault_recoveries += other.fault_recoveries
        self.burden_bins = self.burden_bins + other.burden_bins

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardRunStats):
            return NotImplemented
        close = lambda a, b: math.isclose(a, b, rel_tol=1e-9,  # noqa: E731
                                          abs_tol=1e-6)
        return (self.tasks == other.tasks
                and self.lookups == other.lookups
                and self.hits == other.hits
                and self.attempts == other.attempts
                and self.attempt_failures == other.attempt_failures
                and self.failures == other.failures
                and self.totals_by_class == other.totals_by_class
                and self.failures_by_class == other.failures_by_class
                and self.pre_speed == other.pre_speed
                and self.pre_delay == other.pre_delay
                and self.fetch_speed == other.fetch_speed
                and self.fetch_delay == other.fetch_delay
                and self.e2e_delay == other.e2e_delay
                and self.fetch_count == other.fetch_count
                and self.impeded_fetches == other.impeded_fetches
                and self.fault_impacts == other.fault_impacts
                and self.fault_retries == other.fault_retries
                and self.fault_failovers == other.fault_failovers
                and self.fault_aborts == other.fault_aborts
                and self.fault_recoveries == other.fault_recoveries
                and close(self.payload_bytes, other.payload_bytes)
                and close(self.traffic_bytes, other.traffic_bytes)
                and close(self.pre_traffic_bytes, other.pre_traffic_bytes)
                and np.allclose(self.burden_bins, other.burden_bins,
                                rtol=1e-9, atol=1e-6))

    __hash__ = None  # type: ignore[assignment]  # mutable container

    # -- headline statistics -----------------------------------------------------

    @property
    def cache_hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def request_failure_ratio(self) -> float:
        return self.failures / self.tasks if self.tasks else 0.0

    @property
    def attempt_failure_ratio(self) -> float:
        return self.attempt_failures / self.attempts \
            if self.attempts else 0.0

    def failure_ratio_by_class(self) -> dict[PopularityClass, float]:
        return {klass: self.failures_by_class.get(klass, 0) / total
                for klass, total in self.totals_by_class.items()}

    @property
    def impeded_fetch_share(self) -> float:
        return self.impeded_fetches / self.fetch_count \
            if self.fetch_count else 0.0

    @property
    def peak_burden(self) -> float:
        """Peak upload-bandwidth burden across the week, in B/s."""
        return float(self.burden_bins.max()) if len(self.burden_bins) \
            else 0.0

    @property
    def user_traffic_overhead(self) -> float:
        return self.traffic_bytes / self.payload_bytes \
            if self.payload_bytes > 0 else 0.0

    # -- identity ----------------------------------------------------------------

    def digest(self) -> str:
        """Canonical SHA-256 of the full stats state.

        Floats are serialised via ``float.hex`` so the digest is exact,
        not tolerance-based: two runs digest equal iff every count,
        sketch bucket, and bit of every float agree.  This is what the
        kill-resume CI job (and the recovery tests) compare -- a
        resumed run must reproduce an uninterrupted run *bit-for-bit*,
        which the fixed shard merge order makes well-defined.
        """
        def sketch_state(sketch: QuantileSketch) -> list:
            return [sorted(sketch._buckets.items()),
                    sketch._zero_count, sketch.count,
                    float(sketch.total).hex(),
                    float(sketch.min_value).hex(),
                    float(sketch.max_value).hex()]

        payload = {
            "horizon": float(self.horizon).hex(),
            "bin_width": float(self.bin_width).hex(),
            "tasks": self.tasks, "lookups": self.lookups,
            "hits": self.hits, "attempts": self.attempts,
            "attempt_failures": self.attempt_failures,
            "failures": self.failures,
            "totals_by_class": {klass.name: count for klass, count
                                in self.totals_by_class.items()},
            "failures_by_class": {klass.name: count for klass, count
                                  in self.failures_by_class.items()},
            "pre_speed": sketch_state(self.pre_speed),
            "pre_delay": sketch_state(self.pre_delay),
            "fetch_speed": sketch_state(self.fetch_speed),
            "fetch_delay": sketch_state(self.fetch_delay),
            "e2e_delay": sketch_state(self.e2e_delay),
            "fetch_count": self.fetch_count,
            "impeded_fetches": self.impeded_fetches,
            "payload_bytes": float(self.payload_bytes).hex(),
            "traffic_bytes": float(self.traffic_bytes).hex(),
            "pre_traffic_bytes": float(self.pre_traffic_bytes).hex(),
            "fault_impacts": self.fault_impacts,
            "fault_retries": self.fault_retries,
            "fault_failovers": self.fault_failovers,
            "fault_aborts": self.fault_aborts,
            "fault_recoveries": self.fault_recoveries,
            "burden_bins": [float(value).hex()
                            for value in self.burden_bins],
        }
        encoded = json.dumps(payload, sort_keys=True,
                             separators=(",", ":")).encode()
        return hashlib.sha256(encoded).hexdigest()


def merge_stats(parts: list[ShardRunStats]) -> ShardRunStats:
    """Reduce per-shard stats into the week's stats, in shard order."""
    if not parts:
        raise ValueError("nothing to merge")
    merged = ShardRunStats(horizon=parts[0].horizon,
                           bin_width=parts[0].bin_width)
    for part in parts:
        merged.merge(part)
    return merged


class ShardReplay:
    """Replays a (sub-)workload through the per-file cloud model."""

    def __init__(self, config: CloudConfig = CloudConfig(),
                 source_model: Optional[SourceModel] = None,
                 fetch_model: Optional[FetchSpeedModel] = None,
                 topology: Optional[ChinaTopology] = None,
                 seed: int = 41,
                 metrics: AnyRegistry = NOOP,
                 faults: Optional[FaultInjector] = None,
                 policies: Optional[ResiliencePolicies] = None):
        self.config = config
        self.source_model = source_model or SourceModel()
        self.fetch_model = fetch_model or FetchSpeedModel()
        self.topology = topology or ChinaTopology()
        self.seed = seed
        self.metrics = metrics
        # Fault injection is strictly opt-in: with ``faults=None`` the
        # replay draws the identical RNG sequence as before (the chaos
        # jitter stream is only forked when a plan is present), so
        # shard-merge bit-identity and golden digests are preserved.
        self.faults = faults
        self.policies = policies
        self._factory = RngFactory(seed).fork("scale-cloud")
        self._paths: dict[ISP, tuple[ISP, PathQuality]] = {}
        self._m_tasks = metrics.counter("repro_scale_tasks_total")
        self._m_hits = metrics.counter("repro_scale_cache_hits_total")
        self._m_misses = metrics.counter("repro_scale_cache_misses_total")
        self._m_attempts = metrics.counter(
            "repro_scale_predownload_attempts_total")
        self._m_failures = metrics.counter(
            "repro_scale_predownload_failures_total")
        self._m_fetches = metrics.counter("repro_scale_fetches_total")

    # -- paths ------------------------------------------------------------------

    def _path_for(self, user_isp: ISP) -> tuple[ISP, PathQuality]:
        """Server group and path quality for a user's fetches.

        Mirrors :meth:`UploadingServers.candidate_groups` under zero
        load: the home group when the user sits in a major ISP
        (privileged path), else the lowest-latency alternative group.
        """
        cached = self._paths.get(user_isp)
        if cached is None:
            if user_isp in MAJOR_ISPS:
                server_isp = user_isp
            else:
                server_isp = min(
                    MAJOR_ISPS,
                    key=lambda isp: self.topology.path_quality(
                        isp, user_isp).latency_ms)
            cached = (server_isp,
                      self.topology.path_quality(server_isp, user_isp))
            self._paths[user_isp] = cached
        return cached

    # -- replay -----------------------------------------------------------------

    def run(self, workload: Workload,
            user_lookup: Optional[Callable[[str], User]] = None
            ) -> ShardRunStats:
        """Replay every request; returns mergeable stats.

        ``user_lookup`` must resolve *any* user id appearing in the
        requests -- content-sharded sub-workloads reference users owned
        by other shards, so shard workers pass a
        :class:`~repro.scale.shardgen.UserDirectory` here.  Defaults to
        the workload's own user table.
        """
        if user_lookup is None:
            table = workload.user_by_id()
            user_lookup = table.__getitem__
        by_file: dict[str, list[RequestRecord]] = {}
        for request in workload.requests:
            by_file.setdefault(request.file_id, []).append(request)
        stats = ShardRunStats(horizon=workload.horizon)
        flows: list[tuple[float, float, float]] = []
        for file_id in sorted(by_file):
            self._replay_file(workload.catalog[file_id], by_file[file_id],
                              user_lookup, stats, flows)
        stats.burden_bins = bin_rate_series(flows, stats.bin_width,
                                            workload.horizon)
        return stats

    def _replay_file(self, record: CatalogFile,
                     requests: list[RequestRecord],
                     user_lookup: Callable[[str], User],
                     stats: ShardRunStats,
                     flows: list[tuple[float, float, float]]) -> None:
        """Replay one file's full (time-ordered) request stream."""
        fork = self._factory.fork(f"file:{record.file_id}")
        session_rng = fork.stream("session")
        fetch_rng = fork.stream("fetch")
        # Backoff jitter for chaos retries; only forked when faults are
        # present (stream creation is label-addressed, so skipping it
        # leaves the fault-free draw sequence untouched).
        chaos_rng = fork.stream("chaos") if self.faults is not None \
            else None
        source = self._source_for(record)
        klass = record.popularity_class
        cached = self.config.collaborative_cache and bool(
            fork.stream("preseed").random()
            < self.config.precached_probability[klass])
        # The single in-flight pre-download of this file, if any:
        # (finish time, success flag) -- concurrent requests coalesce.
        in_flight: Optional[tuple[float, bool]] = None

        for request in requests:
            now = request.request_time
            stats.tasks += 1
            self._m_tasks.inc()
            stats.totals_by_class[klass] = \
                stats.totals_by_class.get(klass, 0) + 1
            if in_flight is not None and now >= in_flight[0]:
                if in_flight[1]:
                    pressure = None if self.faults is None \
                        else self.faults.active("pool_pressure", "pool",
                                                in_flight[0])
                    if pressure is None:
                        cached = True
                    else:
                        # Disk-full pressure at landing time: the
                        # finished file never makes it into the pool.
                        self.faults.impact(pressure)
                        stats.fault_impacts += 1
                in_flight = None

            if cached:
                # Storage-pool hit: pre-download is instant and free.
                stats.lookups += 1
                stats.hits += 1
                self._m_hits.inc()
                pre_finish = now
            elif in_flight is not None:
                finish, success = in_flight
                stats.lookups += 1
                self._m_misses.inc()
                if success:
                    # Coalesced into the running pre-download; counts as
                    # a warm hit when it lands (pool semantics).
                    stats.lookups += 1
                    stats.hits += 1
                    self._m_hits.inc()
                    pre_finish = finish
                else:
                    stats.failures += 1
                    self._m_failures.inc()
                    stats.failures_by_class[klass] = \
                        stats.failures_by_class.get(klass, 0) + 1
                    stats.pre_speed.add(0.0)
                    stats.pre_delay.add(finish - now)
                    continue
            else:
                stats.lookups += 1
                self._m_misses.inc()
                if self.faults is None:
                    outcome = DownloadSession(
                        source, record.size, CLOUD_VANTAGE,
                        limits=SessionLimits(
                            rate_caps=(
                                self.config.predownloader_bandwidth,),
                            stagnation_timeout=self.config
                            .stagnation_timeout),
                    ).simulate(session_rng)
                    stats.attempts += 1
                    self._m_attempts.inc()
                else:
                    # Chaos campaign: one or more session attempts with
                    # fault windows and (optional) recovery folded into
                    # a single merged outcome.  Per-attempt counters are
                    # kept inside the helper.
                    outcome = self._chaos_attempt(record, source,
                                                  session_rng, chaos_rng,
                                                  now, stats)
                finish = now + outcome.duration
                stats.pre_traffic_bytes += outcome.traffic
                stats.pre_speed.add(outcome.average_rate)
                stats.pre_delay.add(outcome.duration)
                if self.config.collaborative_cache:
                    in_flight = (finish, outcome.success)
                if not outcome.success:
                    if self.faults is None:
                        stats.attempt_failures += 1
                    stats.failures += 1
                    self._m_failures.inc()
                    stats.failures_by_class[klass] = \
                        stats.failures_by_class.get(klass, 0) + 1
                    continue
                pre_finish = finish

            self._fetch(record, request, pre_finish, now, fetch_rng,
                        user_lookup, stats, flows, chaos_rng)

    def _source_for(self, record: CatalogFile) -> ContentSource:
        return self.source_model.build(record.file_id, record.protocol,
                                       record.weekly_demand)

    # -- chaos (fault-injected) variants ------------------------------------------

    def _chaos_attempt(self, record: CatalogFile, source: ContentSource,
                       rng: np.random.Generator,
                       jitter: np.random.Generator, now: float,
                       stats: ShardRunStats) -> DownloadOutcome:
        """Analytic-clock twin of the engine's resilient pre-download.

        Runs session attempts on a local clock starting at ``now``:
        a ``vm_stall`` window blocks the attempt (wait-it-out under
        retry policies, stagnation-death otherwise), an active
        ``seed_death`` window forces a mid-transfer failure on P2P
        files, and a window *opening* mid-attempt truncates it at the
        window start.  With checkpoint-resume on, restarted attempts
        fetch only the uncommitted remainder.  Returns one merged
        outcome whose duration spans the whole campaign.
        """
        inj = self.faults
        assert inj is not None
        policies = self.policies
        retry = policies.retry if policies is not None else None
        resume = policies is not None and policies.checkpoint_resume
        limits = SessionLimits(
            rate_caps=(self.config.predownloader_bandwidth,),
            stagnation_timeout=self.config.stagnation_timeout)
        break_kinds = ("vm_stall", "seed_death") if record.is_p2p \
            else ("vm_stall",)
        committed = 0.0
        clock = now
        total_traffic = 0.0
        peak = 0.0
        attempt = 0
        impacted = False
        while True:
            attempt += 1
            stall = inj.active("vm_stall", record.file_id, clock)
            if stall is not None:
                impacted = True
                inj.impact(stall)
                stats.fault_impacts += 1
                if retry is not None and retry.allows(attempt + 1):
                    inj.retry("scale-pre")
                    stats.fault_retries += 1
                    clock = inj.clear_time(("vm_stall",), record.file_id,
                                           clock) \
                        + retry.backoff(attempt, jitter)
                    continue
                clock += self.config.stagnation_timeout
                inj.abort("scale-pre")
                stats.fault_aborts += 1
                return DownloadOutcome(
                    success=False, duration=clock - now,
                    bytes_obtained=committed, file_size=record.size,
                    average_rate=0.0, peak_rate=peak,
                    traffic=total_traffic, failure_cause="fault:vm_stall")
            remaining = record.size - committed if resume \
                else record.size
            dead = record.is_p2p and inj.active(
                "seed_death", record.file_id, clock) is not None
            outcome = DownloadSession(
                source, remaining, CLOUD_VANTAGE, limits=limits,
                mid_failure_probability=1.0 if dead else None,
            ).simulate(rng)
            stats.attempts += 1
            self._m_attempts.inc()
            brk = inj.next_break(break_kinds, record.file_id, clock,
                                 clock + outcome.duration)
            if brk is None:
                attempt_out = outcome
                clock += outcome.duration
                fault = None
            else:
                fault = brk
                impacted = True
                inj.impact(brk)
                stats.fault_impacts += 1
                elapsed = brk.start - clock
                frac = min(elapsed / outcome.duration, 1.0) \
                    if outcome.duration > 0 else 1.0
                moved = min(outcome.average_rate * elapsed, remaining)
                attempt_out = DownloadOutcome(
                    success=False, duration=elapsed,
                    bytes_obtained=moved, file_size=remaining,
                    average_rate=outcome.average_rate,
                    peak_rate=outcome.peak_rate,
                    traffic=outcome.traffic * frac,
                    failure_cause=f"fault:{brk.kind}")
                clock = brk.start
            total_traffic += attempt_out.traffic
            peak = max(peak, attempt_out.peak_rate)
            if resume:
                committed = min(committed + attempt_out.bytes_obtained,
                                record.size)
            if attempt_out.success:
                duration = clock - now
                if impacted:
                    inj.recover("scale-pre", duration)
                    stats.fault_recoveries += 1
                return DownloadOutcome(
                    success=True, duration=duration,
                    bytes_obtained=record.size, file_size=record.size,
                    average_rate=record.size / duration
                    if duration > 0 else attempt_out.average_rate,
                    peak_rate=peak, traffic=total_traffic)
            stats.attempt_failures += 1
            if retry is not None and retry.allows(attempt + 1):
                inj.retry("scale-pre")
                stats.fault_retries += 1
                wait = retry.backoff(attempt, jitter)
                if fault is not None:
                    wait += max(inj.clear_time((fault.kind,),
                                               record.file_id, clock)
                                - clock, 0.0)
                clock += wait
                continue
            if impacted:
                inj.abort("scale-pre")
                stats.fault_aborts += 1
            return DownloadOutcome(
                success=False, duration=clock - now,
                bytes_obtained=committed if resume
                else attempt_out.bytes_obtained,
                file_size=record.size,
                average_rate=attempt_out.average_rate, peak_rate=peak,
                traffic=total_traffic,
                failure_cause=attempt_out.failure_cause)

    def _alternate_path(self, user_isp: ISP, down: frozenset[str]
                        ) -> Optional[tuple[ISP, PathQuality]]:
        """Lowest-latency non-crashed server group (failover target)."""
        candidates = [isp for isp in MAJOR_ISPS
                      if isp.value not in down]
        if not candidates:
            return None
        server = min(candidates,
                     key=lambda isp: self.topology.path_quality(
                         isp, user_isp).latency_ms)
        return server, self.topology.path_quality(server, user_isp)

    def _chaos_fetch(self, record: CatalogFile, request: RequestRecord,
                     pre_finish: float, request_time: float, start: float,
                     user: User, server: ISP, quality: PathQuality,
                     rng: np.random.Generator,
                     jitter: np.random.Generator,
                     stats: ShardRunStats,
                     flows: list[tuple[float, float, float]]) -> None:
        """The user fetch under fault injection.

        A crashed home group either fails over to the lowest-latency
        healthy group (policies with failover), waits out the crash
        window (retry policies), or blocks the fetch entirely (policies
        off).  A crash window opening mid-flow truncates it; committed
        bytes survive under checkpoint-resume.  ``isp_degrade`` scales
        the achieved rate.
        """
        inj = self.faults
        assert inj is not None
        policies = self.policies
        retry = policies.retry if policies is not None else None
        resume = policies is not None and policies.checkpoint_resume
        clock = start
        committed = 0.0
        attempt = 0
        impacted = False
        stats.fetch_count += 1
        self._m_fetches.inc()
        while True:
            attempt += 1
            down = inj.crashed_isps(clock)
            path_server, path_quality = server, quality
            if path_server.value in down:
                impacted = True
                spec = inj.active("server_crash", path_server.value,
                                  clock)
                if spec is not None:
                    inj.impact(spec)
                    stats.fault_impacts += 1
                alt = self._alternate_path(user.isp, down) \
                    if policies is not None and policies.failover \
                    else None
                if alt is not None:
                    inj.failover("scale-fetch")
                    stats.fault_failovers += 1
                    path_server, path_quality = alt
                elif retry is not None and retry.allows(attempt + 1):
                    inj.retry("scale-fetch")
                    stats.fault_retries += 1
                    clock = inj.clear_time(("server_crash",),
                                           path_server.value, clock) \
                        + retry.backoff(attempt, jitter)
                    continue
                else:
                    # The group is dark and nothing recovers: the fetch
                    # is blocked outright (0 B/s, impeded).
                    inj.abort("scale-fetch")
                    stats.fault_aborts += 1
                    stats.fetch_speed.add(0.0)
                    stats.fetch_delay.add(0.0)
                    stats.e2e_delay.add(pre_finish - request_time)
                    stats.impeded_fetches += 1
                    stats.payload_bytes += committed
                    return
            factor = inj.factor("isp_degrade", path_server.value, clock)
            rate = min(self.fetch_model.sample_speed(
                user.access_bandwidth, path_quality, rng),
                self.config.max_fetch_rate) * factor
            remaining = record.size - committed if resume \
                else record.size
            duration = remaining / rate if rate > 0 else 0.0
            brk = inj.next_break(("server_crash",), path_server.value,
                                 clock, clock + duration)
            if brk is None:
                flows.append((clock, clock + duration, rate))
                clock += duration
                total = clock - start
                speed = record.size / total if total > 0 else rate
                stats.fetch_speed.add(speed)
                stats.fetch_delay.add(total)
                stats.e2e_delay.add((pre_finish - request_time) + total)
                if speed < IMPEDED_FETCH_THRESHOLD:
                    stats.impeded_fetches += 1
                stats.payload_bytes += record.size
                stats.traffic_bytes += record.size * float(
                    rng.uniform(1.07, 1.10))
                if impacted:
                    inj.recover("scale-fetch", total)
                    stats.fault_recoveries += 1
                return
            impacted = True
            inj.impact(brk)
            stats.fault_impacts += 1
            moved = min(rate * (brk.start - clock), remaining)
            flows.append((clock, brk.start, rate))
            if resume:
                committed = min(committed + moved, record.size)
            clock = brk.start
            if retry is not None and retry.allows(attempt + 1):
                inj.retry("scale-fetch")
                stats.fault_retries += 1
                clock = inj.clear_time(("server_crash",),
                                       path_server.value, clock) \
                    + retry.backoff(attempt, jitter)
                continue
            inj.abort("scale-fetch")
            stats.fault_aborts += 1
            total = clock - start
            stats.fetch_speed.add(0.0)
            stats.fetch_delay.add(total)
            stats.e2e_delay.add((pre_finish - request_time) + total)
            stats.impeded_fetches += 1
            stats.payload_bytes += committed
            return

    def _fetch(self, record: CatalogFile, request: RequestRecord,
               pre_finish: float, request_time: float,
               rng: np.random.Generator,
               user_lookup: Callable[[str], User],
               stats: ShardRunStats,
               flows: list[tuple[float, float, float]],
               jitter: Optional[np.random.Generator] = None) -> None:
        """The user's fetch after the think-time lag (never rejected)."""
        lag = self.config.fetch_lag_median * float(
            np.exp(rng.normal(0.0, self.config.fetch_lag_sigma)))
        start = pre_finish + lag
        user = user_lookup(request.user_id)
        server, quality = self._path_for(user.isp)
        if self.faults is not None:
            self._chaos_fetch(record, request, pre_finish, request_time,
                              start, user, server, quality, rng, jitter,
                              stats, flows)
            return
        rate = min(self.fetch_model.sample_speed(user.access_bandwidth,
                                                 quality, rng),
                   self.config.max_fetch_rate)
        duration = record.size / rate if rate > 0 else 0.0
        flows.append((start, start + duration, rate))
        stats.fetch_count += 1
        self._m_fetches.inc()
        stats.fetch_speed.add(rate)
        stats.fetch_delay.add(duration)
        stats.e2e_delay.add((pre_finish - request_time) + duration)
        if rate < IMPEDED_FETCH_THRESHOLD:
            stats.impeded_fetches += 1
        stats.payload_bytes += record.size
        stats.traffic_bytes += record.size * float(rng.uniform(1.07, 1.10))
