"""Benchmark the sharded pipeline and emit ``BENCH_scale.json``.

Usage::

    python -m repro.scale.bench --scale 0.01 --jobs 1,4 \
        --out BENCH_scale.json

Runs workload generation + cloud replay through
:func:`~repro.scale.pipelines.sharded_cloud_stats` once per requested
``--jobs`` value, checks that every run's merged stats are identical
(the shard-invariance contract), and writes a perf record with
per-shard walls, speedups over the first (baseline) jobs value, and the
host's CPU count -- the artifact CI uploads for cross-PR comparison.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from typing import Any, Optional

from repro.obs.exporters import write_bench_json
from repro.obs.registry import MetricsRegistry
from repro.scale.pipelines import sharded_cloud_stats
from repro.scale.plan import DEFAULT_SHARDS, ShardPlan


def run_benchmark(scale: float = 0.005, shards: int = DEFAULT_SHARDS,
                  jobs_values: tuple[int, ...] = (1, 4),
                  seed: int = 20150222) -> dict[str, Any]:
    """Measure the pipeline at each jobs value; returns the perf record."""
    plan = ShardPlan(scale=scale, seed=seed, shards=shards)
    runs = []
    reference = None
    for jobs in jobs_values:
        registry = MetricsRegistry()
        stats, info = sharded_cloud_stats(plan, jobs=jobs,
                                          metrics=registry)
        if reference is None:
            reference = stats
        elif stats != reference:
            raise RuntimeError(
                f"shard invariance violated: jobs={jobs} produced "
                f"different merged stats than jobs={jobs_values[0]}")
        runs.append({
            "jobs": jobs,
            "wall_seconds": info.wall_seconds,
            "work_seconds": info.work_seconds,
            "shard_walls": list(info.shard_walls),
            "tasks": stats.tasks,
            "cache_hit_ratio": stats.cache_hit_ratio,
            "request_failure_ratio": stats.request_failure_ratio,
        })
    baseline = runs[0]["wall_seconds"]
    for run in runs:
        run["speedup"] = baseline / run["wall_seconds"] \
            if run["wall_seconds"] > 0 else 0.0
    return {
        "benchmark": "scale.sharded_cloud_stats",
        "cpu_count": os.cpu_count(),
        "scale": scale,
        "shards": shards,
        "seed": seed,
        "runs": runs,
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.005)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--jobs", type=str, default="1,4",
                        help="comma-separated jobs values to measure")
    parser.add_argument("--seed", type=int, default=20150222)
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_scale.json"))
    args = parser.parse_args(argv)
    jobs_values = tuple(int(part) for part in args.jobs.split(","))
    record = run_benchmark(scale=args.scale, shards=args.shards,
                           jobs_values=jobs_values, seed=args.seed)
    write_bench_json(record, args.out)
    print(json.dumps({"out": str(args.out),
                      "cpu_count": record["cpu_count"],
                      "runs": [{"jobs": run["jobs"],
                                "wall_seconds": round(
                                    run["wall_seconds"], 3),
                                "speedup": round(run["speedup"], 2)}
                               for run in record["runs"]]},
                     indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
