"""repro.scale -- sharded, multi-process execution for full-trace runs.

The subsystem that takes the simulation from down-sampled weeks to the
paper's real dimensions:

* :class:`ShardPlan` / :class:`ShardSpec` -- stable-hash partition of a
  measurement week into independent sub-workloads (content-sharded, so
  cache-coupled state stays shard-local);
* ``shardgen`` -- per-entity workload synthesis whose shard union is
  bit-identical for any shard count or worker scheduling;
* ``replay`` -- the admission-free per-file cloud replay producing
  mergeable :class:`ShardRunStats`;
* ``executor`` / ``pipelines`` -- spawn-safe process-pool map-reduce over
  shards (``run_sharded``) and the end-to-end generate / cloud-replay /
  AP-replay pipelines behind the CLIs' ``--jobs``;
* ``runner`` -- the parallel experiment runner (driver groups with
  disjoint artefact footprints, each in a fresh context);
* ``bench`` -- the ``BENCH_scale.json`` perf record
  (``python -m repro.scale.bench``).

Determinism contract: merged results depend only on ``(scale, seed,
shards)`` -- never on ``jobs`` -- and the default shard count is a fixed
constant so the common configuration depends only on ``(scale, seed)``.

Durability: every fan-out here routes through
:func:`repro.recovery.durable.durable_map`, so crashed or hung workers
are requeued within a bounded budget, and passing a
:class:`repro.recovery.RecoveryConfig` (CLI ``--run-dir``/``--resume``)
checkpoints per-shard results for bit-identical resume.
"""

from repro.scale.executor import ScaleRunInfo, run_sharded, shard_key
from repro.scale.pipelines import (
    sharded_ap_replay,
    sharded_cloud_stats,
    sharded_generate,
)
from repro.scale.plan import (
    DEFAULT_SHARDS,
    ShardPlan,
    ShardSpec,
    stable_hash,
)
from repro.scale.reducers import merge_cdfs, merge_workloads
from repro.scale.replay import ShardReplay, ShardRunStats, merge_stats
from repro.scale.runner import GROUPS, check_group_coverage, run_parallel
from repro.scale.shardgen import UserDirectory, generate_shard

__all__ = [
    "DEFAULT_SHARDS",
    "GROUPS",
    "ScaleRunInfo",
    "ShardPlan",
    "ShardReplay",
    "ShardRunStats",
    "ShardSpec",
    "UserDirectory",
    "check_group_coverage",
    "generate_shard",
    "merge_cdfs",
    "merge_stats",
    "merge_workloads",
    "run_parallel",
    "run_sharded",
    "shard_key",
    "sharded_ap_replay",
    "sharded_cloud_stats",
    "sharded_generate",
    "stable_hash",
]
