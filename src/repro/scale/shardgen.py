"""Per-entity workload synthesis: any shard, any order, same week.

The sequential :class:`~repro.workload.generator.WorkloadGenerator`
draws every file and user from shared streams, so entity ``i``'s
attributes depend on how many entities were drawn before it -- correct,
but impossible to partition.  This module derives **all** of an entity's
randomness from its own :meth:`RngFactory.fork` keyed by the entity
index:

* ``fork(f"file:{i}")`` -> file ``i``'s size, type, protocol, demand,
  its requests' arrival times, and its fetch-at-most-once user
  assignment;
* ``fork(f"user:{j}")`` -> user ``j``'s ISP, address, bandwidth, and
  reporting flag.

Because nothing depends on draw order, the union of any partition of the
index space is bit-identical to the 1-shard output -- the invariance that
``repro.scale`` rests on (tested in ``tests/test_scale.py``).

Two deliberate deviations from the sequential generator (documented in
DESIGN.md's Scale note):

* protocols and file types are drawn i.i.d. from the marginal mixes
  instead of from the sequential generator's variance-reducing
  :class:`~repro.workload.catalog.QuotaDeck` (deck positions are
  sequence-dependent); at shard-worthy scales the extra variance is
  negligible;
* user addresses are hash-derived inside the ISP's CIDR capacity rather
  than allocated from a sequential cursor; collisions are possible and
  harmless (addresses only feed ISP resolution, which is CIDR-based).
"""

from __future__ import annotations

from functools import lru_cache
from operator import attrgetter
from typing import Optional

import numpy as np

from repro.netsim.isp import IspRegistry, ISP, default_registry
from repro.netsim.link import AccessBandwidthModel
from repro.obs.registry import AnyRegistry, NOOP
from repro.scale.plan import ShardSpec, stable_hash
from repro.sim.randomness import RngFactory
from repro.storage.dedup import content_id
from repro.workload.arrivals import ArrivalProcess
from repro.workload.catalog import PROTOCOL_MIX, FileCatalog
from repro.workload.filetypes import FileTypeModel
from repro.workload.generator import BufferedIndexPicker, Workload
from repro.workload.popularity import PopularityModel
from repro.workload.records import CatalogFile, RequestRecord, User
from repro.workload.sizes import FileSizeModel
from repro.workload.users import UserPopulation

#: Shared immutable default models (all frozen dataclasses).
_SIZE_MODEL = FileSizeModel()
_TYPE_MODEL = FileTypeModel()
_POPULARITY_MODEL = PopularityModel()

_REPORT_PROBABILITY = UserPopulation().report_probability


def _draw_protocol(rng: np.random.Generator):
    """One i.i.d. draw from the paper's protocol mix."""
    draw = rng.random()
    cumulative = 0.0
    for protocol, share in PROTOCOL_MIX:
        cumulative += share
        if draw < cumulative:
            return protocol
    return PROTOCOL_MIX[-1][0]


def file_record(seed: int, file_index: int,
                size_model: FileSizeModel = _SIZE_MODEL,
                type_model: FileTypeModel = _TYPE_MODEL,
                popularity_model: PopularityModel = _POPULARITY_MODEL
                ) -> CatalogFile:
    """File ``file_index``'s attributes, independent of all other files."""
    rng = RngFactory(seed).fork(f"file:{file_index}").stream("attrs")
    size, is_small = size_model.sample(rng)
    protocol = _draw_protocol(rng)
    file_type = type_model.sample(is_small, rng)
    demand = popularity_model.sample_weekly_demand(rng)
    file_id = content_id(f"file-{file_index}")
    return CatalogFile(
        file_id=file_id, size=size, file_type=file_type,
        protocol=protocol, weekly_demand=demand,
        source_url=f"{protocol.value}://origin/{file_id}")


@lru_cache(maxsize=None)
def _address_blocks(cidrs: tuple[str, ...]):
    """(networks, capacities, total capacity) of one ISP's CIDR blocks.

    The per-user address derivation used to recompute this per call;
    the blocks are immutable, so compute each tuple once per process.
    """
    import ipaddress
    networks = tuple(ipaddress.ip_network(cidr) for cidr in cidrs)
    capacities = tuple(max(network.num_addresses - 2, 0)
                       for network in networks)
    return networks, capacities, sum(capacities)


def derive_address(registry: IspRegistry, isp: ISP,
                   user_index: int) -> str:
    """Hash-derive user ``user_index``'s address inside ``isp``'s blocks.

    Mirrors the address range :class:`~repro.netsim.ip.IpAllocator`
    hands out (offsets 1..n-2 of each block) so derived addresses
    resolve to the same ISP through :class:`~repro.netsim.ip.IpResolver`.
    """
    networks, capacities, total = _address_blocks(
        registry.profile(isp).cidrs)
    if total <= 0:
        raise RuntimeError(f"address space of {isp} is empty")
    offset = stable_hash(f"addr:{user_index}") % total
    for network, capacity in zip(networks, capacities):
        if offset < capacity:
            return str(network.network_address + 1 + offset)
        offset -= capacity
    raise AssertionError("unreachable: offset bounded by total capacity")


def user_record(seed: int, user_index: int,
                registry: Optional[IspRegistry] = None,
                bandwidth_model: Optional[AccessBandwidthModel] = None,
                report_probability: float = _REPORT_PROBABILITY) -> User:
    """User ``user_index``'s attributes, independent of all other users."""
    registry = registry or default_registry()
    bandwidth_model = bandwidth_model or AccessBandwidthModel()
    rng = RngFactory(seed).fork(f"user:{user_index}").stream("attrs")
    isp = registry.sample_isp(rng)
    return User(
        user_id=f"u{user_index:08d}",
        ip_address=derive_address(registry, isp, user_index),
        isp=isp,
        access_bandwidth=bandwidth_model.sample_downstream(rng),
        reports_bandwidth=bool(rng.random() < report_probability))


class UserDirectory:
    """Lazy, memoised view of the full user population.

    Shard workers only *own* the users whose hash lands in their shard,
    but a shard's requests may be assigned to any user in the week; the
    directory materialises those users on demand from their index --
    the same records every other shard would derive.
    """

    def __init__(self, seed: int, user_count: int,
                 registry: Optional[IspRegistry] = None,
                 bandwidth_model: Optional[AccessBandwidthModel] = None):
        if user_count < 1:
            raise ValueError("user_count must be >= 1")
        self.seed = seed
        self.user_count = user_count
        self._registry = registry or default_registry()
        self._bandwidth_model = bandwidth_model or AccessBandwidthModel()
        self._users: dict[int, User] = {}

    def __len__(self) -> int:
        return self.user_count

    def user(self, user_index: int) -> User:
        if not 0 <= user_index < self.user_count:
            raise IndexError(f"user index {user_index} outside "
                             f"[0, {self.user_count})")
        record = self._users.get(user_index)
        if record is None:
            record = user_record(self.seed, user_index,
                                 registry=self._registry,
                                 bandwidth_model=self._bandwidth_model)
            self._users[user_index] = record
        return record

    def by_id(self, user_id: str) -> User:
        """Resolve a ``u{index:08d}`` identifier back to its record."""
        if not user_id.startswith("u"):
            raise KeyError(user_id)
        return self.user(int(user_id[1:]))


def requests_for_file(seed: int, file_index: int, record: CatalogFile,
                      directory: UserDirectory,
                      arrivals: ArrivalProcess) -> list[RequestRecord]:
    """All of one file's requests, derived from the file's own fork.

    Arrival times come from the file's ``times`` stream, users from its
    ``assign`` stream via the same fetch-at-most-once retry draw the
    sequential generator uses.  Requests of one file are sorted in time
    by construction (:meth:`ArrivalProcess.sample_times` sorts).
    """
    fork = RngFactory(seed).fork(f"file:{file_index}")
    demand = record.weekly_demand
    times = arrivals.sample_times(demand, fork.stream("times"))
    # The per-file assign stream is never read again after this loop,
    # so the buffered picker's overdraw past the last slot is safe; the
    # chunk is sized to cover the usual retry burn in one prefetch.
    picker = BufferedIndexPicker(len(directory), fork.stream("assign"),
                                 chunk=min(demand + demand // 4 + 8,
                                           8192))
    pick_distinct = picker.pick_distinct
    get_user = directory.user
    file_id, file_type, size = record.file_id, record.file_type, \
        record.size
    source_url, protocol = record.source_url, record.protocol
    seen: set[int] = set()
    requests: list[RequestRecord] = []
    append = requests.append
    for slot, when in enumerate(times.tolist()):
        user = get_user(pick_distinct(seen))
        append(RequestRecord(
            task_id=f"t{file_index:08d}x{slot:05d}",
            user_id=user.user_id,
            ip_address=user.ip_address,
            access_bandwidth=user.reported_bandwidth,
            request_time=when,
            file_id=file_id,
            file_type=file_type,
            file_size=size,
            source_url=source_url,
            protocol=protocol,
        ))
    return requests


def generate_shard(spec: ShardSpec,
                   metrics: AnyRegistry = NOOP) -> Workload:
    """Synthesise one shard's sub-workload.

    Returns a :class:`Workload` holding the shard's owned files, their
    complete request streams (time-sorted), and the shard's owned users.
    Note the request records may reference users owned by *other* shards;
    the merged union (``repro.scale.reducers.merge_workloads``) is
    closed again.
    """
    plan = spec.plan
    arrivals = ArrivalProcess(horizon=spec.horizon)
    directory = UserDirectory(spec.seed, plan.user_count)
    catalog = FileCatalog()
    requests: list[RequestRecord] = []
    for file_index in spec.file_indices():
        record = file_record(spec.seed, file_index)
        catalog.files[record.file_id] = record
        requests.extend(requests_for_file(spec.seed, file_index, record,
                                          directory, arrivals))
    users = [directory.user(user_index)
             for user_index in spec.user_indices()]
    requests.sort(key=attrgetter("request_time", "task_id"))
    metrics.counter("repro_scale_files_total",
                    shard=spec.shard).inc(len(catalog))
    metrics.counter("repro_scale_users_total",
                    shard=spec.shard).inc(len(users))
    metrics.counter("repro_scale_requests_total",
                    shard=spec.shard).inc(len(requests))
    return Workload(config=spec.workload_config, catalog=catalog,
                    users=users, requests=requests)
