"""Discrete-event simulation engine.

This subpackage is the execution substrate for every system model in the
reproduction: a heap-based event scheduler (:class:`Simulator`),
generator-based processes (:class:`Process`), and shared resources used to
model bandwidth pools (:class:`ReservationPool`, :class:`FairSharePool`).

The engine is deliberately small -- it implements exactly the primitives the
paper's systems need -- but it is a genuine general-purpose DES core: the
cloud simulator, the smart-AP replay rig, and the ODR evaluator all run on
it unmodified.
"""

from repro.sim.clock import (
    DAY,
    HOUR,
    MINUTE,
    SECOND,
    WEEK,
    format_duration,
    kbps,
    mbps,
    gbps,
)
from repro.sim.engine import Interrupt, Process, SimulationError, Simulator, Timeout
from repro.sim.randomness import RngFactory, derive_seed, substream
from repro.sim.resources import (
    CapacityExceeded,
    FairSharePool,
    Reservation,
    ReservationPool,
)

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "format_duration",
    "kbps",
    "mbps",
    "gbps",
    "Simulator",
    "Process",
    "Timeout",
    "Interrupt",
    "SimulationError",
    "ReservationPool",
    "FairSharePool",
    "Reservation",
    "CapacityExceeded",
    "RngFactory",
    "derive_seed",
    "substream",
]
