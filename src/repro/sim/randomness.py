"""Deterministic random-stream management.

Every stochastic component of the reproduction (workload synthesis, swarm
dynamics, server reliability, ...) draws from a named substream derived
from one master seed.  Substreams are derived by stable string hashing, so
adding a new component never perturbs the draws of existing ones -- the
property that keeps experiment outputs stable across code growth.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, label: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream label."""
    digest = hashlib.sha256(f"{master_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def substream(master_seed: int, label: str) -> np.random.Generator:
    """A NumPy generator seeded deterministically from (seed, label)."""
    return np.random.default_rng(derive_seed(master_seed, label))


class RngFactory:
    """Factory handing out named, reproducible random substreams."""

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, label: str) -> np.random.Generator:
        """Return (creating on first use) the substream for ``label``."""
        if label not in self._streams:
            self._streams[label] = substream(self.master_seed, label)
        return self._streams[label]

    def fork(self, label: str) -> "RngFactory":
        """A child factory whose streams are independent of the parent's."""
        return RngFactory(derive_seed(self.master_seed, f"fork:{label}"))
