"""Bandwidth resources shared by simulated transfers.

Two allocation disciplines are provided, matching the two behaviours the
paper describes:

* :class:`ReservationPool` -- admission-controlled, reservation-based.
  Xuanfeng "sets no limitation on the user's fetching speed" but, once the
  uploading servers exhaust their upload bandwidth, it "temporarily rejects
  new fetching requests rather than degrade the speeds of active
  downloads" (paper section 2.1).  A reservation pool models exactly that:
  each admitted flow holds a fixed-rate reservation until released, and a
  request that does not fit is refused.

* :class:`FairSharePool` -- max-min fair sharing for links where
  concurrent flows genuinely compete (e.g. several devices fetching from
  one smart AP over the LAN).

Both pools record a step-function usage history so experiments can bin
committed bandwidth over time (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


class CapacityExceeded(Exception):
    """Raised when a reservation cannot be admitted at current utilisation."""

    def __init__(self, pool: "ReservationPool", requested: float):
        super().__init__(
            f"pool {pool.name!r}: requested {requested:.0f} B/s but only "
            f"{pool.available:.0f} of {pool.capacity:.0f} B/s available")
        self.pool = pool
        self.requested = requested


@dataclass(slots=True)
class Reservation:
    """A live claim on a :class:`ReservationPool`.

    Slotted: one is allocated per admitted fetch on the replay hot
    path, and the four fixed fields never grow.
    """

    pool: "ReservationPool"
    rate: float
    label: str = ""
    released: bool = False

    def release(self, now: float) -> None:
        if not self.released:
            self.released = True
            self.pool._release(self, now)


@dataclass
class UsageSample:
    """One step of the committed-bandwidth step function."""

    time: float
    committed: float


class ReservationPool:
    """Fixed-capacity pool handing out constant-rate reservations.

    ``capacity`` may be ``None`` for an unmetered pool (useful in ablations
    that remove admission control); reservations then always succeed but
    usage is still recorded.
    """

    def __init__(self, capacity: Optional[float], name: str = "pool"):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.committed = 0.0
        self.peak_committed = 0.0
        self.rejections = 0
        self.admissions = 0
        # The step function as two parallel float lists: admissions and
        # releases hit this on every flow, and appending floats is
        # several times cheaper than constructing a sample object per
        # step.  ``usage_history`` re-materialises the object view.
        self._times: list[float] = [0.0]
        self._committed: list[float] = [0.0]

    @property
    def available(self) -> float:
        if self.capacity is None:
            return float("inf")
        return self.capacity - self.committed

    def can_admit(self, rate: float) -> bool:
        return self.capacity is None or self.committed + rate <= self.capacity

    def reserve(self, rate: float, now: float,
                label: str = "") -> Reservation:
        """Admit a flow at ``rate`` B/s or raise :class:`CapacityExceeded`."""
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        if not self.can_admit(rate):
            self.rejections += 1
            raise CapacityExceeded(self, rate)
        self.committed += rate
        self.admissions += 1
        self.peak_committed = max(self.peak_committed, self.committed)
        self._record(now)
        return Reservation(self, rate, label=label)

    def try_reserve(self, rate: float, now: float,
                    label: str = "") -> Optional[Reservation]:
        """Like :meth:`reserve` but returns ``None`` instead of raising.

        Implemented without the exception round-trip: this sits on the
        fetch admission hot path, where a raised-and-caught
        ``CapacityExceeded`` would cost more than the reservation.
        """
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        committed = self.committed + rate
        if self.capacity is not None and committed > self.capacity:
            self.rejections += 1
            return None
        self.committed = committed
        self.admissions += 1
        if committed > self.peak_committed:
            self.peak_committed = committed
        # _record inlined: one admission per fetch flow.
        times = self._times
        if times[-1] == now:
            self._committed[-1] = committed
        else:
            times.append(now)
            self._committed.append(committed)
        return Reservation(self, rate, label=label)

    def _release(self, reservation: Reservation, now: float) -> None:
        committed = self.committed - reservation.rate
        if committed < -1e-6:
            raise RuntimeError(f"pool {self.name!r} over-released")
        if committed < 0.0:
            committed = 0.0
        self.committed = committed
        # _record inlined: one release per fetch flow.
        times = self._times
        if times[-1] == now:
            self._committed[-1] = committed
        else:
            times.append(now)
            self._committed.append(committed)

    def _record(self, now: float) -> None:
        times = self._times
        if times[-1] == now:
            self._committed[-1] = self.committed
        else:
            times.append(now)
            self._committed.append(self.committed)

    # -- usage history -----------------------------------------------------

    def usage_history(self) -> list[UsageSample]:
        """The committed-rate step function as recorded samples."""
        return [UsageSample(time, committed)
                for time, committed in zip(self._times, self._committed)]

    def binned_usage(self, bin_width: float, horizon: float) -> list[float]:
        """Time-average committed bandwidth per bin over ``[0, horizon)``.

        Integrates the step function exactly, so short-lived flows inside a
        bin contribute their true share.  Used for the 5-minute bins in
        Figure 11.
        """
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        n_bins = max(1, int(round(horizon / bin_width)))
        totals = [0.0] * n_bins
        times = self._times
        levels = self._committed
        count = len(times)
        for index in range(count):
            start = times[index]
            end = times[index + 1] if index + 1 < count else horizon
            committed = levels[index]
            start, end = max(start, 0.0), min(end, horizon)
            if end <= start or committed == 0.0:
                continue
            first_bin = int(start / bin_width)
            last_bin = min(int((end - 1e-12) / bin_width), n_bins - 1)
            for b in range(first_bin, last_bin + 1):
                lo = max(start, b * bin_width)
                hi = min(end, (b + 1) * bin_width)
                totals[b] += committed * max(0.0, hi - lo)
        return [total / bin_width for total in totals]


@dataclass
class _Flow:
    demand: float
    label: str = ""
    share: float = 0.0


class FairSharePool:
    """Max-min fair bandwidth sharing among concurrent flows.

    Each flow declares a demand cap (e.g. the device's own access
    bandwidth); the pool computes the max-min fair allocation every time
    the flow set changes.  Flows that demand less than the equal share get
    their full demand; the remainder is redistributed (progressive
    filling).
    """

    def __init__(self, capacity: float, name: str = "link"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._flows: list[_Flow] = []

    def add_flow(self, demand: float, label: str = "") -> _Flow:
        if demand < 0:
            raise ValueError(f"demand must be non-negative, got {demand}")
        flow = _Flow(demand=demand, label=label)
        self._flows.append(flow)
        self._reallocate()
        return flow

    def remove_flow(self, flow: _Flow) -> None:
        self._flows.remove(flow)
        self._reallocate()

    def flows(self) -> Iterator[_Flow]:
        return iter(self._flows)

    def share_of(self, flow: _Flow) -> float:
        return flow.share

    def _reallocate(self) -> None:
        pending = sorted(self._flows, key=lambda f: f.demand)
        remaining = self.capacity
        count = len(pending)
        for index, flow in enumerate(pending):
            equal_share = remaining / (count - index)
            flow.share = min(flow.demand, equal_share)
            remaining -= flow.share
