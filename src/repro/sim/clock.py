"""Time and rate units used throughout the simulators.

The simulation clock is a float measured in **seconds**.  Data sizes are
measured in **bytes** and rates in **bytes per second**; the helpers below
convert from the units the paper quotes (KBps, Mbps, Gbps) so that model
code can cite the paper's numbers verbatim.

The paper mixes bits and bytes freely ("20 Mbps (= 2.5 MBps)"), so being
explicit here prevents an entire class of unit bugs.
"""

from __future__ import annotations

SECOND = 1.0
MINUTE = 60.0 * SECOND
HOUR = 60.0 * MINUTE
DAY = 24.0 * HOUR
WEEK = 7.0 * DAY

KB = 1000.0
MB = 1000.0 * KB
GB = 1000.0 * MB


def kbps(value: float) -> float:
    """Convert kilobytes-per-second (KBps, as quoted in the paper) to B/s."""
    return value * KB


def mbps(value: float) -> float:
    """Convert megabits-per-second (Mbps) to bytes-per-second.

    ``mbps(20)`` is 2.5e6 B/s, matching the paper's "20 Mbps (= 2.5 MBps)".
    """
    return value * 1e6 / 8.0


def gbps(value: float) -> float:
    """Convert gigabits-per-second (Gbps) to bytes-per-second."""
    return value * 1e9 / 8.0


def to_kbps(rate: float) -> float:
    """Convert a rate in B/s back to KBps for reporting."""
    return rate / KB


def to_mbps(rate: float) -> float:
    """Convert a rate in B/s back to Mbps for reporting."""
    return rate * 8.0 / 1e6


def to_gbps(rate: float) -> float:
    """Convert a rate in B/s back to Gbps for reporting."""
    return rate * 8.0 / 1e9


def format_duration(seconds: float) -> str:
    """Render a duration in a compact human form, e.g. ``2d3h04m``.

    Used by example scripts and experiment reports; sub-minute components
    are rounded to whole seconds.
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    remainder = float(seconds)
    parts: list[str] = []
    for unit, label in ((DAY, "d"), (HOUR, "h"), (MINUTE, "m")):
        count = int(remainder // unit)
        if count or parts:
            parts.append(f"{count}{label}")
        if parts:
            remainder -= count * unit
    parts.append(f"{remainder:.0f}s")
    return "".join(parts)
