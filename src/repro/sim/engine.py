"""A compact generator-based discrete-event simulation core.

The design follows the classic process-interaction style (as popularised by
SimPy) but is implemented from scratch so the reproduction has no external
simulation dependency:

* :class:`Simulator` owns the event heap and the clock.
* :class:`Process` wraps a generator; the generator *yields* waitables
  (:class:`Timeout`, another :class:`Process`, or an :class:`Event`) and is
  resumed when the waitable fires.
* ``simulator.call_at`` / ``call_in`` schedule plain callbacks for code that
  does not need a coroutine.

Determinism: events scheduled for the same instant fire in scheduling order
(a monotonically increasing sequence number breaks ties), so simulations are
reproducible bit-for-bit given a seeded workload.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import AnyRegistry


class SimulationError(RuntimeError):
    """Raised for structural misuse of the engine (not for model failures).

    Messages carry the current simulation time (and the event/process
    name where one exists) so a failure deep inside a 100k-event run is
    diagnosable from the traceback alone.
    """


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries an arbitrary payload describing why the interrupt
    happened (e.g. a stagnation-timeout sentinel in the download session
    model).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable that processes may yield on.

    An event is *triggered* at most once, with an optional value.  Processes
    waiting on it resume with that value.  Triggering is immediate from the
    scheduler's point of view: waiters are scheduled at the current time.
    """

    __slots__ = ("_sim", "_triggered", "_value", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self._sim = sim
        self._triggered = False
        self._value: Any = None
        # Waiters keyed by process identity: insertion-ordered (so the
        # resume order on trigger matches the old append-ordered list)
        # with O(1) removal -- a mass cancellation of n waiters used to
        # be quadratic through list.remove.
        self._waiters: dict[int, Process] = {}
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(
                f"value of event {self.name!r} read before trigger "
                f"at t={self._sim.now:g}")
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise SimulationError(
                f"event {self.name!r} triggered twice "
                f"at t={self._sim.now:g}")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, {}
        schedule_resume = self._sim._schedule_resume
        for process in waiters.values():
            schedule_resume(process, value)

    def _add_waiter(self, process: "Process") -> None:
        if self._triggered:
            self._sim._schedule_resume(process, self._value)
        else:
            self._waiters[id(process)] = process

    def _remove_waiter(self, process: "Process") -> None:
        self._waiters.pop(id(process), None)


class Timeout:
    """Yieldable delay: ``yield Timeout(5.0)`` resumes 5 sim-seconds later."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay!r}")
        self.delay = float(delay)
        self.value = value


ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """A running simulation process wrapping a generator.

    A process is itself waitable: yielding a process suspends the caller
    until the target finishes, resuming with the target's return value.  If
    the target raised, the exception propagates into the waiter.
    """

    __slots__ = ("_sim", "_generator", "_done", "_result", "_error",
                 "_waiters", "_waiting_on", "_resume_token", "name")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator; did you forget to call the "
                "process function?")
        self._sim = sim
        self._generator = generator
        self._done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        # Same insertion-ordered O(1)-removal bookkeeping as Event.
        self._waiters: dict[int, Process] = {}
        self._waiting_on: Any = None
        #: Incremented on every resume; scheduled wake-ups carry the token
        #: they were created under, so a stale wake-up (e.g. the original
        #: timeout of an interrupted sleep) is ignored.
        self._resume_token = 0
        self.name = name or getattr(generator, "__name__", "process")

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise SimulationError(
                f"result of process {self.name!r} read while still "
                f"running at t={self._sim.now:g}")
        if self._error is not None:
            raise self._error
        return self._result

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into this process at the current time.

        The interrupt targets the process's *current* wait.  If the
        process resumes at the same instant before the throw lands (its
        timeout fired, its event triggered), the stale interrupt is
        discarded instead of being thrown into whatever the process
        waits on next -- the same staleness rule scheduled wake-ups
        follow.
        """
        if self._done:
            return
        obs = self._sim._obs
        if obs is not None:
            obs.interrupts.inc()
        self._sim._schedule_throw(self, Interrupt(cause))

    # -- internal stepping -------------------------------------------------

    def _step(self, value: Any = None,
              error: Optional[BaseException] = None,
              token: Optional[int] = None) -> None:
        if self._done:
            return
        if token is not None and token != self._resume_token:
            return   # a stale wake-up from an abandoned wait
        self._resume_token += 1
        self._detach_wait()
        try:
            if error is not None:
                target = self._generator.throw(error)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:  # model-level failure propagates
            self._finish(error=exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            self._waiting_on = None
            self._sim.call_in(target.delay, self._step, target.value,
                              None, self._resume_token)
        elif isinstance(target, Process):
            if target._done:
                if target._error is not None:
                    self._sim._schedule_throw(self, target._error)
                else:
                    self._sim._schedule_resume(self, target._result)
            else:
                target._waiters[id(self)] = self
                self._waiting_on = target
        elif isinstance(target, Event):
            target._add_waiter(self)
            self._waiting_on = target
        else:
            self._finish(error=SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r} "
                f"at t={self._sim.now:g}"))

    def _detach_wait(self) -> None:
        waiting = self._waiting_on
        if waiting is None:
            return
        self._waiting_on = None
        if isinstance(waiting, Event):
            waiting._waiters.pop(id(self), None)
        elif isinstance(waiting, Process):
            waiting._waiters.pop(id(self), None)

    def _finish(self, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        self._done = True
        self._result = result
        self._error = error
        waiters, self._waiters = self._waiters, {}
        for waiter in waiters.values():
            if error is not None:
                self._sim._schedule_throw(waiter, error)
            else:
                self._sim._schedule_resume(waiter, result)
        if error is not None and not waiters:
            self._sim._record_orphan_error(self, error)


class _SimObs:
    """Cached engine instruments (one attribute lookup per hot event).

    Built only for an *enabled* registry; the engine hot loop guards
    every instrumentation point with ``if self._obs is not None`` so the
    default (NOOP / no metrics) path costs a single attribute test.
    """

    __slots__ = ("scheduled", "fired", "resumes", "interrupts",
                 "processes", "heap_depth")

    def __init__(self, metrics: "AnyRegistry"):
        self.scheduled = metrics.counter("repro_sim_events_scheduled_total")
        self.fired = metrics.counter("repro_sim_events_fired_total")
        self.resumes = metrics.counter("repro_sim_process_resumes_total")
        self.interrupts = metrics.counter("repro_sim_interrupts_total")
        self.processes = metrics.counter("repro_sim_processes_started_total")
        self.heap_depth = metrics.gauge("repro_sim_heap_depth")


class Simulator:
    """The event loop: a clock plus a time-ordered callback heap.

    ``metrics`` wires the engine into the observability subsystem: the
    simulator binds its clock as the registry's sim-time source and
    reports events scheduled/fired, process starts/resumes, interrupts,
    and heap depth per sim-time bin.  The default (``None`` or the
    ``NOOP`` registry) leaves the hot loop uninstrumented.
    """

    def __init__(self, metrics: Optional["AnyRegistry"] = None):
        self._now = 0.0
        # Heap entries are plain (when, seq, func, args) tuples: the seq
        # tie-breaker keeps comparisons off func/args, and storing the
        # callable with its argument tuple avoids allocating a closure
        # per scheduled event (the old hot-path lambda).
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        # Events scheduled for the *current* instant (process starts,
        # resumes, throws, zero-delay timeouts -- about half of a cloud
        # replay) never touch the heap: they are drained through this
        # FIFO in one pass per timestamp.  Entries are (seq, func, args);
        # seq is monotonic on both structures, so interleaving by seq
        # reproduces the exact global (when, seq) firing order the
        # heap-only engine had.
        self._immediate: deque[tuple[int, Callable[..., None], tuple]] = \
            deque()
        self._sequence = 0
        self._orphan_errors: list[tuple[str, BaseException]] = []
        self._obs: Optional[_SimObs] = None
        if metrics is not None and metrics.enabled:
            metrics.set_clock(lambda: self._now)
            self._obs = _SimObs(metrics)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- scheduling --------------------------------------------------------

    def call_at(self, when: float, func: Callable[..., None],
                *args: Any) -> None:
        """Schedule ``func(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}")
        if self._obs is not None:
            self._obs.scheduled.inc()
        seq = self._sequence
        self._sequence = seq + 1
        if when == self._now:
            self._immediate.append((seq, func, args))
        else:
            heappush(self._heap, (when, seq, func, args))

    def call_in(self, delay: float, func: Callable[..., None],
                *args: Any) -> None:
        """Schedule ``func(*args)`` after ``delay`` seconds.

        Open-coded rather than delegating to :meth:`call_at`: this is
        the single hottest scheduling entry point (every resume, throw,
        and zero-delay hop lands here), and the extra call frame plus
        ``*args`` re-pack measurably shows up in replay profiles.
        """
        now = self._now
        when = now + delay
        if when < now:
            raise SimulationError(
                f"cannot schedule at {when} before now={now}")
        if self._obs is not None:
            self._obs.scheduled.inc()
        seq = self._sequence
        self._sequence = seq + 1
        if when == now:
            self._immediate.append((seq, func, args))
        else:
            heappush(self._heap, (when, seq, func, args))

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process immediately (first step at the current time)."""
        process = Process(self, generator, name=name)
        if self._obs is not None:
            self._obs.processes.inc()
        self.call_in(0.0, process._step, None)
        return process

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot event bound to this simulator."""
        return Event(self, name=name)

    def _schedule_resume(self, process: Process, value: Any) -> None:
        # The resume token is captured at scheduling time: if the
        # process is resumed or interrupted at the same instant before
        # this wake-up is delivered, the delivery is stale (it belongs
        # to a wait the process has already left) and must be dropped,
        # not delivered to whatever the process waits on next.
        if self._obs is not None:
            self._obs.resumes.inc()
        self.call_in(0.0, process._step, value, None,
                     process._resume_token)

    def _schedule_throw(self, process: Process, error: BaseException) -> None:
        # Same staleness contract as _schedule_resume: a throw is only
        # delivered if the target still sits in the wait it was aimed at.
        self.call_in(0.0, process._step, None, error,
                     process._resume_token)

    def _record_orphan_error(self, process: Process,
                             error: BaseException) -> None:
        self._orphan_errors.append((process.name, error))

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queues, optionally stopping the clock at ``until``.

        Returns the final simulation time.  Unhandled exceptions raised by
        processes that nobody was waiting on are re-raised here so model
        bugs never pass silently.

        Batched dispatch: all events sharing the current timestamp drain
        through the immediate FIFO in one pass -- one clock update per
        distinct tick, no per-event heap re-entry.  A heap entry that
        shares the current timestamp (scheduled before the clock reached
        it) is merged in by comparing sequence numbers, so the global
        firing order is identical to a single time-ordered heap.
        """
        obs = self._obs
        heap = self._heap
        immediate = self._immediate
        orphans = self._orphan_errors
        pop = heappop
        popleft = immediate.popleft
        while True:
            if immediate:
                now = self._now
                if until is not None and now > until:
                    break
                if heap and heap[0][0] <= now and heap[0][1] < immediate[0][0]:
                    _when, _seq, func, args = pop(heap)
                else:
                    _seq, func, args = popleft()
            elif heap:
                head = heap[0]
                when = head[0]
                if until is not None and when > until:
                    break
                pop(heap)
                self._now = when
                func, args = head[2], head[3]
            else:
                break
            if obs is not None:
                obs.fired.inc()
                # Depth includes the event being fired, so an active
                # simulation never reads as empty.
                obs.heap_depth.set(len(heap) + len(immediate) + 1)
            func(*args)
            if orphans:
                name, error = orphans[0]
                raise SimulationError(
                    f"unhandled error in process {name!r} "
                    f"at t={self._now:g}") from error
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_all(self, batch: Iterable[ProcessGenerator]) -> list[Any]:
        """Convenience: start every generator as a process, run to quiescence,
        and return their results in order."""
        processes = [self.process(gen) for gen in batch]
        self.run()
        return [p.result for p in processes]
