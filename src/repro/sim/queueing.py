"""FIFO slot resources for the process engine.

:class:`SlotResource` models a pool of identical servers (pre-downloader
VMs, benchmark rigs): a process acquires a slot -- waiting in FIFO order
when all are busy -- does its work, and releases.  The familiar SimPy
``Resource`` shape, built on this engine's events.

Usage inside a process::

    slot = yield resource.acquire(sim)
    try:
        yield Timeout(work)
    finally:
        resource.release(slot, sim)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Event, SimulationError, Simulator


@dataclass
class Slot:
    """A held slot; opaque token proving ownership."""

    resource: "SlotResource"
    acquired_at: float
    released: bool = False


class SlotResource:
    """``capacity`` identical slots with FIFO waiting."""

    def __init__(self, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[tuple[Event, float]] = deque()
        # -- statistics --
        self.total_acquired = 0
        self.total_wait_time = 0.0
        self.peak_queue_length = 0

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self, sim: Simulator) -> Event:
        """An event that fires (with the :class:`Slot`) once a slot is
        free; yield it from a process."""
        event = sim.event(name=f"{self.name}-acquire")
        if self.in_use < self.capacity:
            self.in_use += 1
            self.total_acquired += 1
            event.trigger(Slot(self, acquired_at=sim.now))
        else:
            # Remember when the wait began to account queueing delay.
            self._waiters.append((event, sim.now))
            self.peak_queue_length = max(self.peak_queue_length,
                                         len(self._waiters))
        return event

    def release(self, slot: Slot, sim: Simulator) -> None:
        """Return a slot; the oldest waiter (if any) gets it."""
        if slot.resource is not self:
            raise SimulationError("slot belongs to a different resource")
        if slot.released:
            raise SimulationError("slot released twice")
        slot.released = True
        if self._waiters:
            waiter, requested_at = self._waiters.popleft()
            self.total_wait_time += sim.now - requested_at
            self.total_acquired += 1
            waiter.trigger(Slot(self, acquired_at=sim.now))
        else:
            self.in_use -= 1
            if self.in_use < 0:
                raise SimulationError(
                    f"resource {self.name!r} over-released")

    @property
    def mean_wait_time(self) -> float:
        if self.total_acquired == 0:
            return 0.0
        return self.total_wait_time / self.total_acquired
