"""The reproduction scorecard: one number (and one table) for "how close".

Aggregates every paper-vs-measured comparison the drivers produce into
per-experiment and overall statistics, and checks the paper's *headline
qualitative claims* -- the findings that must hold regardless of
absolute calibration (who wins, in which direction, by roughly what
factor).

Usage::

    python -m repro.experiments.scorecard --scale 0.02
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import TextTable
from repro.experiments import REGISTRY, default_context
from repro.experiments.base import ExperimentReport
from repro.experiments.context import DEFAULT_SCALE, ExperimentContext
from repro.experiments.runner import ORDER, run_all


@dataclass
class HeadlineClaim:
    """One qualitative finding of the paper and whether it reproduced."""

    claim: str
    holds: bool


@dataclass
class Scorecard:
    """Aggregated reproduction quality."""

    reports: list[ExperimentReport]
    claims: list[HeadlineClaim]

    @property
    def all_errors(self) -> np.ndarray:
        return np.array([
            row.relative_error
            for report in self.reports
            for row in report.comparisons
            if np.isfinite(row.relative_error)])

    @property
    def median_relative_error(self) -> float:
        return float(np.median(self.all_errors))

    @property
    def share_within_25_percent(self) -> float:
        errors = self.all_errors
        return float((errors <= 0.25).mean())

    @property
    def claims_held(self) -> int:
        return sum(1 for claim in self.claims if claim.holds)

    def render(self) -> str:
        table = TextTable(["experiment", "rows", "median err",
                           "worst err"], ["", "d", ".1%", ".1%"])
        for report in self.reports:
            errors = [row.relative_error for row in report.comparisons
                      if np.isfinite(row.relative_error)]
            if not errors:
                continue
            table.add_row(report.experiment_id, len(errors),
                          float(np.median(errors)), max(errors))
        lines = [table.render(), ""]
        lines.append(f"overall: {len(self.all_errors)} comparisons, "
                     f"median relative error "
                     f"{self.median_relative_error:.1%}, "
                     f"{self.share_within_25_percent:.0%} within 25%")
        lines.append("")
        lines.append(f"headline claims: {self.claims_held}/"
                     f"{len(self.claims)} hold")
        for claim in self.claims:
            marker = "+" if claim.holds else "!"
            lines.append(f"  [{marker}] {claim.claim}")
        return "\n".join(lines)


def evaluate_claims(context: ExperimentContext) -> list[HeadlineClaim]:
    """The paper's qualitative findings, checked against the simulation."""
    cloud = context.cloud_result
    ap = context.ap_report
    odr = context.odr_result
    claims: list[HeadlineClaim] = []

    fetch = cloud.fetch_speed_cdf()
    pre = cloud.attempt_speed_cdf()
    claims.append(HeadlineClaim(
        "cloud fetching is ~an order of magnitude faster than "
        "pre-downloading (7-11x)",
        5.0 <= fetch.median / max(pre.median, 1.0) <= 25.0))

    by_class = cloud.failure_ratio_by_class()
    from repro.workload.popularity import PopularityClass
    claims.append(HeadlineClaim(
        "pre-download failures concentrate on unpopular files",
        by_class.get(PopularityClass.UNPOPULAR, 0.0) >
        3 * by_class.get(PopularityClass.POPULAR, 0.0)))

    claims.append(HeadlineClaim(
        "a large minority (~28%) of cloud fetches are impeded",
        0.15 <= cloud.impeded_fetch_share <= 0.45))

    highly = cloud.bandwidth_series(only_highly_popular=True)
    total = cloud.bandwidth_series()
    claims.append(HeadlineClaim(
        "highly popular files burn ~40% of cloud upload bandwidth",
        0.25 <= float(highly.sum() / total.sum()) <= 0.55))

    claims.append(HeadlineClaim(
        "the cloud rejects a small share of fetches at peak (~1.5%)",
        0.0 < cloud.rejection_ratio <= 0.05))

    claims.append(HeadlineClaim(
        "smart APs fail on ~42% of unpopular files",
        0.30 <= ap.unpopular_failure_ratio <= 0.55))

    claims.append(HeadlineClaim(
        "insufficient seeds cause the great majority of AP failures",
        ap.failure_cause_breakdown().get("insufficient_seeds", 0.0) >
        0.7))

    claims.append(HeadlineClaim(
        "ODR roughly halves (or better) the impeded-fetch share",
        odr.impeded_share < cloud.impeded_fetch_share / 2))

    reduction = odr.cloud_bandwidth_reduction(
        context.cloud_only_result)
    claims.append(HeadlineClaim(
        "ODR cuts cloud upload bandwidth by ~35%",
        0.25 <= reduction <= 0.45))

    claims.append(HeadlineClaim(
        "ODR eliminates write-path-limited downloads (Bottleneck 4)",
        odr.write_path_limited_share == 0.0))

    claims.append(HeadlineClaim(
        "ODR collapses unpopular-file failures vs smart APs",
        odr.unpopular_failure_ratio < ap.unpopular_failure_ratio / 2))

    fig0607 = REGISTRY["fig06_07"](context)
    claims.append(HeadlineClaim(
        "the SE model fits popularity better than Zipf",
        bool(fig0607.data["se_beats_zipf"])))

    return claims


def build_scorecard(context: ExperimentContext | None = None
                    ) -> Scorecard:
    context = context or default_context()
    reports = run_all(context)
    return Scorecard(reports=reports, claims=evaluate_claims(context))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    args = parser.parse_args(argv)
    scorecard = build_scorecard(default_context(scale=args.scale))
    print(scorecard.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
