"""Section 4 text statistics: caching, failures, traffic, impediments."""

from __future__ import annotations

from repro import paper
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.workload.popularity import PopularityClass


@register("cloud_text")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    result = context.cloud_result

    report = ExperimentReport(
        experiment_id="cloud_text",
        title="Cloud system text statistics (section 4)")
    report.add("cache hit ratio", paper.CACHE_HIT_RATIO,
               result.cache_hit_ratio)
    report.add("request-level failure ratio", paper.CLOUD_FAILURE_RATIO,
               result.request_failure_ratio)
    import numpy as np
    no_cache = result.fleet.no_cache_failure_ratio(
        (context.workload.catalog[request.file_id]
         for request in context.workload.requests),
        np.random.default_rng(context.seed + 1))
    report.add("failure ratio without the storage pool",
               paper.CLOUD_FAILURE_RATIO_NO_CACHE, no_cache)
    report.add("unpopular failure ratio",
               paper.CLOUD_UNPOPULAR_FAILURE_RATIO,
               result.failure_ratio_by_class().get(
                   PopularityClass.UNPOPULAR, 0.0))
    report.add("pre-download traffic overhead",
               paper.P2P_TRAFFIC_OVERALL, result.fleet.traffic_overhead)
    report.add("user-side traffic overhead",
               (paper.HTTP_OVERHEAD_LOW + paper.HTTP_OVERHEAD_HIGH) / 2,
               result.user_traffic_overhead())
    report.add("impeded fetch share", paper.IMPEDED_FETCH_SHARE,
               result.impeded_fetch_share)
    breakdown = result.impeded_breakdown()
    report.add("impeded by ISP barrier", paper.IMPEDED_BY_ISP_BARRIER,
               breakdown.get("isp_barrier", 0.0))
    report.add("impeded by low access bandwidth",
               paper.IMPEDED_BY_LOW_ACCESS_BW,
               breakdown.get("low_access_bandwidth", 0.0))
    report.add("fetch rejection ratio", paper.FETCH_REJECTION_RATIO,
               result.rejection_ratio)

    table = TextTable(["impediment cause", "share"], ["", ".4f"])
    for cause, share in breakdown.items():
        table.add_row(cause, share)
    report.table = table.render()
    report.data["breakdown"] = breakdown
    return report
