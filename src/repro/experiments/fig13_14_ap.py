"""Figures 13 and 14: smart-AP pre-download speed and delay CDFs.

Both figures overlay the AP distributions on the cloud's: the paper's
point is that AP pre-downloading is "just a bit lower" in speed (the
write path truncates the top; the mean drops more than the median) and
a bit longer in delay.
"""

from __future__ import annotations

from repro import paper
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.sim.clock import MINUTE


@register("fig13_14")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    ap_speed = context.ap_report.speed_cdf()
    ap_delay = context.ap_report.delay_cdf()
    cloud_speed = context.cloud_result.attempt_speed_cdf()
    cloud_delay = context.cloud_result.attempt_delay_cdf()

    report = ExperimentReport(
        experiment_id="fig13_14",
        title="Smart-AP pre-download speed (Fig. 13) and delay (Fig. 14) "
              "vs cloud")
    report.add("AP speed median (KBps)",
               paper.AP_PRE_SPEED_MEDIAN / 1e3, ap_speed.median / 1e3,
               "KBps")
    report.add("AP speed mean (KBps)", paper.AP_PRE_SPEED_MEAN / 1e3,
               ap_speed.mean / 1e3, "KBps")
    report.add("AP delay median (min)",
               paper.AP_PRE_DELAY_MEDIAN / MINUTE,
               ap_delay.median / MINUTE, "min")
    report.add("AP delay mean (min)", paper.AP_PRE_DELAY_MEAN / MINUTE,
               ap_delay.mean / MINUTE, "min")
    # The comparative claims:
    report.add("AP/cloud speed mean ratio", 64.0 / 69.0,
               ap_speed.mean / max(cloud_speed.mean, 1.0))
    report.add("AP/cloud delay mean ratio", 402.0 / 370.0,
               ap_delay.mean / max(cloud_delay.mean, 1.0))

    table = TextTable(["distribution", "median", "mean", "max"],
                      ["", ".1f", ".1f", ".0f"])
    table.add_row("AP speed (KBps)", ap_speed.median / 1e3,
                  ap_speed.mean / 1e3, ap_speed.max / 1e3)
    table.add_row("cloud speed (KBps)", cloud_speed.median / 1e3,
                  cloud_speed.mean / 1e3, cloud_speed.max / 1e3)
    table.add_row("AP delay (min)", ap_delay.median / MINUTE,
                  ap_delay.mean / MINUTE, ap_delay.max / MINUTE)
    table.add_row("cloud delay (min)", cloud_delay.median / MINUTE,
                  cloud_delay.mean / MINUTE, cloud_delay.max / MINUTE)
    report.table = table.render()
    report.data["ap_speed"] = ap_speed
    report.data["ap_delay"] = ap_delay
    report.data["per_ap"] = {
        name: context.ap_report.for_ap(name).speed_cdf()
        for name in context.ap_report.ap_names()}
    return report
