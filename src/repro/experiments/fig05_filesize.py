"""Figure 5: CDF of requested file size."""

from __future__ import annotations

from repro import paper
from repro.analysis.cdf import empirical_cdf
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context


@register("fig05")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    sizes = [record.size for record in context.workload.catalog]
    cdf = empirical_cdf(sizes)
    report = ExperimentReport(
        experiment_id="fig05", title="CDF of requested file size")
    report.add("median file size (MB)", paper.FILE_SIZE_MEDIAN / 1e6,
               cdf.median / 1e6, "MB")
    report.add("mean file size (MB)", paper.FILE_SIZE_MEAN / 1e6,
               cdf.mean / 1e6, "MB")
    report.add("max file size (GB)", paper.FILE_SIZE_MAX / 1e9,
               cdf.max / 1e9, "GB")
    report.add("share below 8 MB", paper.SMALL_FILE_SHARE,
               cdf.probability_below(paper.SMALL_FILE_THRESHOLD))

    table = TextTable(["percentile", "size (MB)"], ["", ".1f"])
    for quantile in (0.05, 0.25, 0.5, 0.75, 0.95, 0.99):
        table.add_row(f"p{int(quantile * 100)}",
                      cdf.quantile(quantile) / 1e6)
    report.table = table.render()
    report.data["cdf_points"] = cdf.points(50)
    return report
