"""Render the paper's figures as SVG files from a simulated context.

Usage::

    python -m repro.experiments.figures --scale 0.02 --outdir figures/

Each figure mirrors its counterpart in the paper: same axes, same
series, same reference lines (e.g. the 30 Gbps purchased-capacity line
in Figure 11).
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.analysis.cdf import CDF
from repro.analysis.fitting import fit_se, fit_zipf
from repro.analysis.svg import SvgFigure
from repro.experiments.context import DEFAULT_SCALE, ExperimentContext, \
    default_context
from repro.sim.clock import DAY, MINUTE, to_gbps
from repro.workload.popularity import rank_popularity_curve


def _cdf_series(cdf: CDF, scale: float = 1.0,
                points: int = 120) -> tuple[list[float], list[float]]:
    pairs = cdf.points(points)
    return [value / scale for value, _q in pairs], \
        [q for _value, q in pairs]


def fig05(context: ExperimentContext) -> SvgFigure:
    figure = SvgFigure("Figure 5: CDF of requested file size",
                       "File Size (MB)", "CDF")
    sizes = CDF(np.sort([record.size for record
                         in context.workload.catalog]))
    xs, ys = _cdf_series(sizes, scale=1e6)
    figure.add_line(xs, ys, "requested files")
    return figure


def fig06(context: ExperimentContext) -> SvgFigure:
    ranks, popularity = rank_popularity_curve(
        context.workload.catalog.demands())
    fit = fit_zipf(ranks, popularity)
    figure = SvgFigure(
        f"Figure 6: popularity, Zipf fit "
        f"(err {fit.average_relative_error:.1%})",
        "Ranking", "Popularity", xlog=True, ylog=True)
    step = max(1, len(ranks) // 400)
    figure.add_scatter(ranks[::step], popularity[::step], "measurement")
    figure.add_line(ranks[::step], fit.predict(ranks[::step]),
                    "Zipf fitting", dash="5,3")
    return figure


def fig07(context: ExperimentContext) -> SvgFigure:
    ranks, popularity = rank_popularity_curve(
        context.workload.catalog.demands())
    fit = fit_se(ranks, popularity)
    figure = SvgFigure(
        f"Figure 7: popularity, SE fit (c={fit.c:g}, "
        f"err {fit.average_relative_error:.1%})",
        "Ranking", f"Popularity^c", xlog=True)
    step = max(1, len(ranks) // 400)
    figure.add_scatter(ranks[::step], popularity[::step] ** fit.c,
                       "measurement")
    figure.add_line(ranks[::step],
                    fit.predict(ranks[::step]) ** fit.c,
                    "SE fitting", dash="5,3")
    return figure


def fig08(context: ExperimentContext) -> SvgFigure:
    result = context.cloud_result
    figure = SvgFigure("Figure 8: cloud speed CDFs", "Speed (KBps)",
                       "CDF")
    for cdf, label in ((result.attempt_speed_cdf(), "Pre-downloading"),
                       (result.e2e_speed_cdf(), "End-to-End"),
                       (result.fetch_speed_cdf(), "Fetching")):
        xs, ys = _cdf_series(cdf, scale=1e3)
        figure.add_line(xs, ys, label)
    return figure


def fig09(context: ExperimentContext) -> SvgFigure:
    result = context.cloud_result
    figure = SvgFigure("Figure 9: cloud delay CDFs", "Delay (minutes)",
                       "CDF")
    for cdf, label in ((result.fetch_delay_cdf(), "Fetching"),
                       (result.e2e_delay_cdf(), "End-to-End"),
                       (result.attempt_delay_cdf(), "Pre-downloading")):
        xs, ys = _cdf_series(cdf, scale=MINUTE)
        figure.add_line(xs, ys, label)
    return figure


def fig10(context: ExperimentContext) -> SvgFigure:
    scatter = context.cloud_result.failure_ratio_by_demand()
    figure = SvgFigure("Figure 10: popularity vs failure ratio",
                       "Request Popularity (in one week)",
                       "Average Failure Ratio (%)")
    xs = [demand for demand, _ratio in scatter]
    ys = [100.0 * ratio for _demand, ratio in scatter]
    figure.add_scatter(xs, ys, "files")
    return figure


def fig11(context: ExperimentContext) -> SvgFigure:
    result = context.cloud_result
    scale = context.scale
    total = to_gbps(result.bandwidth_series()) / scale
    highly = to_gbps(result.bandwidth_series(
        only_highly_popular=True)) / scale
    days = np.arange(len(total)) * 300.0 / DAY
    figure = SvgFigure("Figure 11: cloud upload bandwidth burden",
                       "Day", "Bandwidth Burden (Gbps)")
    figure.add_line(days, total, "All Files")
    figure.add_line(days, highly, "Highly Popular")
    figure.add_hline(30.0, "30 Gbps")
    return figure


def fig13(context: ExperimentContext) -> SvgFigure:
    figure = SvgFigure("Figure 13: AP pre-download speed CDF",
                       "Pre-downloading Speed (KBps)", "CDF")
    for cdf, label in (
            (context.cloud_result.attempt_speed_cdf(), "Cloud-based"),
            (context.ap_report.speed_cdf(), "Smart APs")):
        xs, ys = _cdf_series(cdf, scale=1e3)
        figure.add_line(xs, ys, label)
    return figure


def fig14(context: ExperimentContext) -> SvgFigure:
    figure = SvgFigure("Figure 14: AP pre-download delay CDF",
                       "Pre-downloading Delay (minutes)", "CDF")
    for cdf, label in (
            (context.cloud_result.attempt_delay_cdf(), "Cloud-based"),
            (context.ap_report.delay_cdf(), "Smart APs")):
        xs, ys = _cdf_series(cdf, scale=MINUTE)
        figure.add_line(xs, ys, label)
    return figure


def fig16(context: ExperimentContext) -> SvgFigure:
    cloud = context.cloud_result
    odr = context.odr_result
    reduction = odr.cloud_bandwidth_reduction(
        context.cloud_only_result)
    conventional = [cloud.impeded_fetch_share, 1.0,
                    context.ap_report.unpopular_failure_ratio,
                    context.ap_only_result.write_path_limited_share]
    with_odr = [odr.impeded_share, 1.0 - reduction,
                odr.unpopular_failure_ratio,
                odr.write_path_limited_share]
    figure = SvgFigure("Figure 16: bottlenecks, conventional vs ODR",
                       "Performance Bottleneck", "Percentage")
    xs = [1, 2, 3, 4]
    figure.add_bars(xs, conventional, "Cloud or Smart APs")
    figure.add_bars(xs, with_odr, "ODR")
    return figure


def fig17(context: ExperimentContext) -> SvgFigure:
    figure = SvgFigure("Figure 17: fetching speed with ODR",
                       "Fetching Speed (KBps)", "CDF")
    for cdf, label in (
            (context.odr_result.fetch_speed_cdf(), "ODR middleware"),
            (context.cloud_result.fetch_speed_cdf(),
             "Xuanfeng users")):
        xs, ys = _cdf_series(cdf, scale=1e3)
        figure.add_line(xs, ys, label)
    return figure


FIGURES = {
    "fig05": fig05, "fig06": fig06, "fig07": fig07, "fig08": fig08,
    "fig09": fig09, "fig10": fig10, "fig11": fig11, "fig13": fig13,
    "fig14": fig14, "fig16": fig16, "fig17": fig17,
}


def render_all(context: ExperimentContext,
               outdir: str | Path) -> list[Path]:
    """Render every figure into ``outdir``; returns the written paths."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written = []
    from repro.recovery.atomic import atomic_write_text
    for name, builder in FIGURES.items():
        path = outdir / f"{name}.svg"
        atomic_write_text(path, builder(context).render())
        written.append(path)
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--outdir", type=Path, default=Path("figures"))
    args = parser.parse_args(argv)
    written = render_all(default_context(scale=args.scale), args.outdir)
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
