"""Shared experiment-report plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.paper import PaperComparison


@dataclass
class ExperimentReport:
    """The output of one experiment driver."""

    experiment_id: str              # e.g. "fig08"
    title: str
    comparisons: list[PaperComparison] = field(default_factory=list)
    table: str = ""
    data: dict[str, Any] = field(default_factory=dict)

    def add(self, quantity: str, paper_value: float,
            measured_value: float, unit: str = "") -> PaperComparison:
        row = PaperComparison(quantity=quantity, paper_value=paper_value,
                              measured_value=measured_value, unit=unit)
        self.comparisons.append(row)
        return row

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.extend(row.format_row() for row in self.comparisons)
        if self.table:
            lines.append("")
            lines.append(self.table)
        return "\n".join(lines)

    def worst_relative_error(self) -> float:
        if not self.comparisons:
            return 0.0
        return max(row.relative_error for row in self.comparisons)


#: experiment id -> driver callable(context) -> ExperimentReport
REGISTRY: dict[str, Callable] = {}


def register(experiment_id: str):
    """Decorator adding a driver to the global registry."""
    def wrap(func):
        if experiment_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        REGISTRY[experiment_id] = func
        return func
    return wrap
