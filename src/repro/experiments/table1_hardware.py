"""Table 1: hardware configurations of the three benchmarked smart APs."""

from __future__ import annotations

from repro.analysis.tables import TextTable
from repro.ap.models import BENCHMARKED_APS
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext


@register("table1")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="table1",
        title="Smart-AP hardware configurations")
    table = TextTable(["Smart AP", "CPU", "RAM", "Storage",
                       "WiFi", "price"])
    for hardware in BENCHMARKED_APS:
        interfaces = "+".join(i.value for i in
                              hardware.storage_interfaces)
        bands = "/".join(b.value for b in hardware.wifi_bands)
        table.add_row(
            hardware.name,
            f"{hardware.cpu_model} @{hardware.cpu_mhz:.0f} MHz",
            f"{hardware.ram_mb} MB",
            f"{interfaces} ({hardware.default_device.name})",
            f"{hardware.wifi_protocols} @{bands}",
            f"${hardware.price_usd:.0f}")
    report.table = table.render()
    # Structural facts the paper's table asserts:
    hiwifi, miwifi, newifi = BENCHMARKED_APS
    report.add("MiWiFi CPU (MHz)", 1000, miwifi.cpu_mhz, "MHz")
    report.add("HiWiFi CPU (MHz)", 580, hiwifi.cpu_mhz, "MHz")
    report.add("Newifi CPU (MHz)", 580, newifi.cpu_mhz, "MHz")
    report.add("MiWiFi RAM (MB)", 256, miwifi.ram_mb, "MB")
    report.data["aps"] = BENCHMARKED_APS
    return report
