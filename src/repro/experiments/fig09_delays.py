"""Figure 9: CDFs of cloud pre-download / fetch / end-to-end delays."""

from __future__ import annotations

from repro import paper
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.sim.clock import MINUTE


@register("fig09")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    result = context.cloud_result
    pre = result.attempt_delay_cdf()
    fetch = result.fetch_delay_cdf()
    e2e = result.e2e_delay_cdf()

    report = ExperimentReport(
        experiment_id="fig09",
        title="Cloud delays: pre-download, fetch, end-to-end")
    report.add("pre-download median (min)",
               paper.PRE_DELAY_MEDIAN / MINUTE, pre.median / MINUTE,
               "min")
    report.add("pre-download mean (min)", paper.PRE_DELAY_MEAN / MINUTE,
               pre.mean / MINUTE, "min")
    report.add("fetch median (min)", paper.FETCH_DELAY_MEDIAN / MINUTE,
               fetch.median / MINUTE, "min")
    report.add("fetch mean (min)", paper.FETCH_DELAY_MEAN / MINUTE,
               fetch.mean / MINUTE, "min")
    report.add("e2e median (min)", paper.E2E_DELAY_MEDIAN / MINUTE,
               e2e.median / MINUTE, "min")
    report.add("e2e mean (min)", paper.E2E_DELAY_MEAN / MINUTE,
               e2e.mean / MINUTE, "min")
    report.add("pre/fetch median delay ratio", 82.0 / 7.0,
               pre.median / max(fetch.median, 1.0))

    table = TextTable(["distribution", "median", "mean", "max"],
                      ["", ".1f", ".1f", ".0f"])
    for name, cdf in (("pre-download", pre), ("fetch", fetch),
                      ("end-to-end", e2e)):
        table.add_row(name, cdf.median / MINUTE, cdf.mean / MINUTE,
                      cdf.max / MINUTE)
    report.table = table.render() + "\n(all delays in minutes)"
    report.data["pre"] = pre
    report.data["fetch"] = fetch
    report.data["e2e"] = e2e
    return report
