"""Experiment drivers: one module per paper figure/table.

Each driver consumes a shared :class:`ExperimentContext` (one synthetic
week, one cloud run, one AP replay -- built lazily and memoised) and
returns an :class:`ExperimentReport` holding paper-vs-measured rows plus
a rendered text table.  The benchmark harness under ``benchmarks/`` and
EXPERIMENTS.md are both generated from these reports.
"""

from repro.experiments.base import ExperimentReport, REGISTRY, register
from repro.experiments.context import ExperimentContext, default_context

# Importing the driver modules populates the registry.
from repro.experiments import (  # noqa: F401  (registration side effects)
    workload_stats,
    fig05_filesize,
    fig06_07_popularity,
    fig08_speeds,
    fig09_delays,
    fig10_failure,
    fig11_bandwidth,
    table1_hardware,
    fig13_14_ap,
    ap_failures,
    table2_storage,
    cloud_text_stats,
    fig16_odr,
    fig17_odr_fetch,
    backend_matrix,
)

__all__ = [
    "ExperimentReport",
    "ExperimentContext",
    "default_context",
    "REGISTRY",
    "register",
]
