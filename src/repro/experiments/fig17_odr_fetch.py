"""Figure 17: CDF of fetching speeds using ODR vs plain Xuanfeng."""

from __future__ import annotations

from repro import paper
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context


@register("fig17")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    odr = context.odr_result.fetch_speed_cdf()
    xuanfeng = context.cloud_result.fetch_speed_cdf()

    report = ExperimentReport(
        experiment_id="fig17",
        title="ODR fetching-speed distribution vs Xuanfeng")
    report.add("ODR fetch median (KBps)",
               paper.ODR_FETCH_SPEED_MEDIAN / 1e3, odr.median / 1e3,
               "KBps")
    report.add("ODR fetch mean (KBps)",
               paper.ODR_FETCH_SPEED_MEAN / 1e3, odr.mean / 1e3, "KBps")
    report.add("ODR fetch max (MBps)",
               paper.ODR_FETCH_SPEED_MAX / 1e6, odr.max / 1e6, "MBps")
    report.add("median improvement over Xuanfeng", 368.0 / 287.0,
               odr.median / max(xuanfeng.median, 1.0))
    report.add("wrong decision share", paper.ODR_WRONG_DECISION_SHARE,
               context.odr_result.wrong_decision_share)

    table = TextTable(["distribution", "min", "median", "mean", "max"],
                      ["", ".0f", ".0f", ".0f", ".0f"])
    table.add_row("ODR (KBps)", odr.min / 1e3, odr.median / 1e3,
                  odr.mean / 1e3, odr.max / 1e3)
    table.add_row("Xuanfeng (KBps)", xuanfeng.min / 1e3,
                  xuanfeng.median / 1e3, xuanfeng.mean / 1e3,
                  xuanfeng.max / 1e3)
    report.table = table.render()
    report.data["odr_cdf"] = odr
    report.data["xuanfeng_cdf"] = xuanfeng
    return report
