"""Figure 10: request popularity vs pre-downloading failure ratio."""

from __future__ import annotations

import numpy as np

from repro import paper
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.workload.popularity import PopularityClass


@register("fig10")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    result = context.cloud_result
    by_class = result.failure_ratio_by_class()
    scatter = result.failure_ratio_by_demand()

    report = ExperimentReport(
        experiment_id="fig10",
        title="Request popularity vs pre-download failure ratio")
    report.add("unpopular failure ratio (cloud)",
               paper.CLOUD_UNPOPULAR_FAILURE_RATIO,
               by_class.get(PopularityClass.UNPOPULAR, 0.0))
    report.add("overall failure ratio (cloud)",
               paper.CLOUD_FAILURE_RATIO, result.request_failure_ratio)

    # Bucket the scatter like the figure's x-axis.
    buckets = [(0, 7), (7, 28), (28, 84), (84, 10 ** 9)]
    table = TextTable(["popularity bucket", "requests",
                       "failure ratio"], ["", "d", ".4f"])
    monotone: list[float] = []
    totals = {}
    for task in result.tasks:
        demand = task.file.weekly_demand
        for low, high in buckets:
            if low <= demand < high:
                key = (low, high)
                total, failed = totals.get(key, (0, 0))
                totals[key] = (total + 1,
                               failed + (0 if task.pre_record.success
                                         else 1))
    for low, high in buckets:
        total, failed = totals.get((low, high), (0, 0))
        ratio = failed / total if total else 0.0
        label = f"[{low}, {'inf' if high >= 10**9 else high})"
        table.add_row(label, total, ratio)
        monotone.append(ratio)
    report.table = table.render()
    report.data["scatter"] = scatter
    report.data["bucket_ratios"] = monotone
    report.data["decreasing"] = all(
        a >= b - 1e-9 for a, b in zip(monotone, monotone[1:]))
    return report
