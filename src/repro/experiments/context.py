"""The shared experiment context: one week, simulated once.

Most figures read from the same three artefacts -- the synthetic
workload, the cloud run over it, and the AP replay of the 1000-request
Unicom sample -- so the context builds each lazily and memoises.  A
module-level default context (keyed by scale and seed) lets independent
benchmark files share a single simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ap.benchrig import ApBenchmarkReport, ApBenchmarkRig
from repro.cloud import CloudConfig, CloudRunResult, XuanfengCloud
from repro.obs.registry import AnyRegistry, NOOP
from repro.core import (
    CloudOnlyStrategy,
    OdrMiddleware,
    OdrReplayResult,
    OdrStrategy,
    ReplayEvaluator,
    SmartApOnlyStrategy,
)
from repro.workload import (
    Workload,
    WorkloadConfig,
    WorkloadGenerator,
    sample_benchmark_requests,
)
from repro.workload.records import RequestRecord

#: Default scale for experiment runs: 2% of the real week (~82 k tasks).
#: Below this the per-ISP upload pools hold only a handful of concurrent
#: flows and admission granularity inflates congestion artefacts.
DEFAULT_SCALE = 0.02
DEFAULT_SEED = 20150222


@dataclass(frozen=True)
class ExperimentFailure:
    """One experiment driver that raised instead of reporting.

    The runner degrades gracefully: a failing driver becomes one of
    these (error + formatted traceback), the remaining experiments
    still run, and the process exits non-zero at the end.
    """

    experiment_id: str
    error: str
    traceback: str


@dataclass
class ExperimentContext:
    """Lazily built shared artefacts for all experiment drivers."""

    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    #: Observability registry shared by every artefact this context
    #: builds (cloud run, AP replay, ODR evaluations); the default NOOP
    #: keeps experiment/bench runs uninstrumented.
    metrics: AnyRegistry = field(default=NOOP, repr=False)
    #: Per-experiment wall-clock seconds, filled by the runner.
    timings: dict[str, float] = field(default_factory=dict, repr=False)
    #: Drivers that raised, in run order (graceful degradation).
    failures: list[ExperimentFailure] = field(default_factory=list,
                                              repr=False)
    _workload: Optional[Workload] = field(default=None, repr=False)
    _cloud: Optional[XuanfengCloud] = field(default=None, repr=False)
    _cloud_result: Optional[CloudRunResult] = field(default=None,
                                                    repr=False)
    _sample: Optional[list[RequestRecord]] = field(default=None,
                                                   repr=False)
    _ap_report: Optional[ApBenchmarkReport] = field(default=None,
                                                    repr=False)
    _odr_result: Optional[OdrReplayResult] = field(default=None,
                                                   repr=False)
    _cloud_only_result: Optional[OdrReplayResult] = field(default=None,
                                                          repr=False)
    _ap_only_result: Optional[OdrReplayResult] = field(default=None,
                                                       repr=False)

    @property
    def workload(self) -> Workload:
        if self._workload is None:
            config = WorkloadConfig(scale=self.scale, seed=self.seed)
            self._workload = WorkloadGenerator(config).generate()
        return self._workload

    @property
    def cloud(self) -> XuanfengCloud:
        if self._cloud is None:
            self.cloud_result  # building the result builds the cloud
        assert self._cloud is not None
        return self._cloud

    @property
    def cloud_result(self) -> CloudRunResult:
        if self._cloud_result is None:
            self._cloud = XuanfengCloud(CloudConfig(scale=self.scale),
                                        metrics=self.metrics)
            self._cloud_result = self._cloud.run(self.workload)
        return self._cloud_result

    @property
    def peak_heap_depth(self) -> float:
        """Deepest event heap any instrumented simulation reached."""
        if not self.metrics.enabled:
            return 0.0
        return max(self.metrics.gauge("repro_sim_heap_depth").peak, 0.0)

    @property
    def sample(self) -> list[RequestRecord]:
        """The 1000-request Unicom benchmark sample (section 5.1)."""
        if self._sample is None:
            self._sample = sample_benchmark_requests(self.workload, 1000)
        return self._sample

    @property
    def ap_report(self) -> ApBenchmarkReport:
        if self._ap_report is None:
            rig = ApBenchmarkRig(self.workload.catalog,
                                 metrics=self.metrics)
            self._ap_report = rig.replay(self.sample)
        return self._ap_report

    def evaluator(self) -> ReplayEvaluator:
        return ReplayEvaluator(self.workload.catalog,
                               self.cloud.database,
                               metrics=self.metrics)

    @property
    def odr_result(self) -> OdrReplayResult:
        if self._odr_result is None:
            strategy = OdrStrategy(OdrMiddleware(self.cloud.database))
            self._odr_result = self.evaluator().replay(self.sample,
                                                       strategy)
        return self._odr_result

    @property
    def cloud_only_result(self) -> OdrReplayResult:
        if self._cloud_only_result is None:
            strategy = CloudOnlyStrategy(self.cloud.database)
            self._cloud_only_result = self.evaluator().replay(
                self.sample, strategy)
        return self._cloud_only_result

    @property
    def ap_only_result(self) -> OdrReplayResult:
        if self._ap_only_result is None:
            self._ap_only_result = self.evaluator().replay(
                self.sample, SmartApOnlyStrategy())
        return self._ap_only_result

    def warm(self, *artefacts: str) -> None:
        """Build the named lazy artefacts up front (e.g. ``"workload"``,
        ``"cloud_result"``).  Used by the parallel group runner so each
        worker's heavy simulation happens in one predictable place."""
        for name in artefacts:
            getattr(self, name)


_CONTEXTS: dict[tuple[float, int], ExperimentContext] = {}


def default_context(scale: float = DEFAULT_SCALE,
                    seed: int = DEFAULT_SEED) -> ExperimentContext:
    """The shared memoised context for a (scale, seed) pair."""
    key = (scale, seed)
    if key not in _CONTEXTS:
        _CONTEXTS[key] = ExperimentContext(scale=scale, seed=seed)
    return _CONTEXTS[key]
