"""Section 5.2 text: smart-AP failure statistics and cause post-mortem."""

from __future__ import annotations

from repro import paper
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.transfer.source import (
    CAUSE_INSUFFICIENT_SEEDS,
    CAUSE_POOR_SERVER,
    CAUSE_SYSTEM_BUG,
)


@register("ap_failures")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    ap = context.ap_report
    causes = ap.failure_cause_breakdown()

    report = ExperimentReport(
        experiment_id="ap_failures",
        title="Smart-AP pre-download failures (section 5.2)")
    report.add("overall failure ratio", paper.AP_FAILURE_RATIO,
               ap.failure_ratio)
    report.add("unpopular failure ratio",
               paper.AP_UNPOPULAR_FAILURE_RATIO,
               ap.unpopular_failure_ratio)
    report.add("failures from insufficient seeds",
               paper.AP_FAILURE_CAUSE_SEEDS,
               causes.get(CAUSE_INSUFFICIENT_SEEDS, 0.0))
    report.add("failures from poor HTTP/FTP",
               paper.AP_FAILURE_CAUSE_SERVER,
               causes.get(CAUSE_POOR_SERVER, 0.0))
    report.add("failures from system bugs", paper.AP_FAILURE_CAUSE_BUG,
               causes.get(CAUSE_SYSTEM_BUG, 0.0))

    table = TextTable(["AP", "failure ratio", "unpopular failure"],
                      ["", ".3f", ".3f"])
    for name in ap.ap_names():
        sub = ap.for_ap(name)
        table.add_row(name, sub.failure_ratio,
                      sub.unpopular_failure_ratio)
    report.table = table.render()
    report.data["causes"] = causes
    return report
