"""Figure 16: the four bottlenecks, conventional approaches vs ODR.

The paper's bars compare each bottleneck's severity under the relevant
conventional approach (cloud for 1 and 2, smart APs for 3 and 4) against
the ODR replay:

* B1: impeded fetches 28% -> 9%;
* B2: purchased/peak bandwidth ratio (burden cut ~35%, peak 34 -> 22
  Gbps, no rejections needed);
* B3: unpopular pre-download failures 42% -> 13%;
* B4: write-path-throttled downloads -> almost completely avoided.
"""

from __future__ import annotations

from repro import paper
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.sim.clock import to_gbps


@register("fig16")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    cloud = context.cloud_result
    ap = context.ap_report
    odr = context.odr_result
    cloud_only = context.cloud_only_result

    report = ExperimentReport(
        experiment_id="fig16",
        title="Four bottlenecks: conventional approaches vs ODR")

    # Bottleneck 1: impeded fetching processes.
    report.add("B1 baseline impeded share (cloud)",
               paper.IMPEDED_FETCH_SHARE, cloud.impeded_fetch_share)
    report.add("B1 ODR impeded share", paper.ODR_IMPEDED_FETCH_SHARE,
               odr.impeded_share)

    # Bottleneck 2: cloud upload bandwidth.
    reduction = odr.cloud_bandwidth_reduction(cloud_only)
    report.add("B2 cloud bandwidth reduction",
               paper.ODR_BANDWIDTH_REDUCTION, reduction)
    baseline_peak = float(cloud.bandwidth_series().max()) / context.scale
    projected_peak = baseline_peak * (1.0 - reduction)
    report.add("B2 projected peak burden (Gbps)",
               to_gbps(paper.ODR_PEAK_BURDEN),
               to_gbps(projected_peak), "Gbps")

    # Bottleneck 3: unpopular pre-download failures.
    report.add("B3 baseline unpopular failure (APs)",
               paper.AP_UNPOPULAR_FAILURE_RATIO,
               ap.unpopular_failure_ratio)
    report.add("B3 ODR unpopular failure",
               paper.ODR_UNPOPULAR_FAILURE_RATIO,
               odr.unpopular_failure_ratio)

    # Bottleneck 4: storage write-path throttling.
    report.add("B4 baseline write-path-limited share (APs)",
               context.ap_only_result.write_path_limited_share,
               context.ap_only_result.write_path_limited_share)
    report.add("B4 ODR write-path-limited share", 0.0,
               odr.write_path_limited_share)

    table = TextTable(["bottleneck", "conventional", "ODR"],
                      ["", ".3f", ".3f"])
    table.add_row("1: impeded fetches", cloud.impeded_fetch_share,
                  odr.impeded_share)
    table.add_row("2: bandwidth (fraction of baseline)", 1.0,
                  1.0 - reduction)
    table.add_row("3: unpopular failures", ap.unpopular_failure_ratio,
                  odr.unpopular_failure_ratio)
    table.add_row("4: write-path limited",
                  context.ap_only_result.write_path_limited_share,
                  odr.write_path_limited_share)
    report.table = table.render()
    report.data["route_mix"] = odr.route_mix()
    report.data["wrong_decisions"] = odr.wrong_decision_share
    return report
