"""Figure 8: CDFs of cloud pre-download / fetch / end-to-end speeds."""

from __future__ import annotations

from repro import paper
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.sim.clock import kbps


@register("fig08")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    result = context.cloud_result
    pre = result.attempt_speed_cdf()
    fetch = result.fetch_speed_cdf()
    e2e = result.e2e_speed_cdf()

    report = ExperimentReport(
        experiment_id="fig08",
        title="Cloud speeds: pre-download, fetch, end-to-end")
    report.add("pre-download median (KBps)",
               paper.PRE_SPEED_MEDIAN / 1e3, pre.median / 1e3, "KBps")
    report.add("pre-download mean (KBps)",
               paper.PRE_SPEED_MEAN / 1e3, pre.mean / 1e3, "KBps")
    report.add("pre-download near-zero share",
               paper.PRE_SPEED_NEAR_ZERO_SHARE,
               pre.probability_below(kbps(5.0)))
    report.add("fetch median (KBps)", paper.FETCH_SPEED_MEDIAN / 1e3,
               fetch.median / 1e3, "KBps")
    report.add("fetch mean (KBps)", paper.FETCH_SPEED_MEAN / 1e3,
               fetch.mean / 1e3, "KBps")
    report.add("e2e median (KBps)", paper.E2E_SPEED_MEDIAN / 1e3,
               e2e.median / 1e3, "KBps")
    report.add("e2e mean (KBps)", paper.E2E_SPEED_MEAN / 1e3,
               e2e.mean / 1e3, "KBps")
    report.add("fetch/pre median speed-up", 287.0 / 25.0,
               fetch.median / max(pre.median, 1.0))

    table = TextTable(["distribution", "min", "median", "mean", "max"],
                      ["", ".0f", ".0f", ".0f", ".0f"])
    for name, cdf in (("pre-download", pre), ("fetch", fetch),
                      ("end-to-end", e2e)):
        table.add_row(name, cdf.min / 1e3, cdf.median / 1e3,
                      cdf.mean / 1e3, cdf.max / 1e3)
    report.table = table.render() + "\n(all speeds in KBps)"
    report.data["pre"] = pre
    report.data["fetch"] = fetch
    report.data["e2e"] = e2e
    return report
