"""Table 2: max pre-download speed and iowait per device x filesystem.

The protocol (section 5.2): replay the top-10 popular requests with no
user-bandwidth throttle on Newifi with a USB flash drive formatted FAT /
NTFS / EXT4 and with a USB hard disk, plus the native HiWiFi (SD+FAT)
and MiWiFi (SATA+EXT4) rows; report the max achieved speed and the
iowait ratio at it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import TextTable
from repro.ap.models import HIWIFI_1S, MIWIFI, NEWIFI
from repro.ap.smartap import SmartAP
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.storage.device import (
    SATA_HDD_1TB,
    SD_CARD_8GB,
    USB_FLASH_8GB,
    USB_HDD_5400,
)
from repro.storage.filesystem import Filesystem
from repro.storage.writepath import WritePath
from repro.netsim.link import TESTBED_ADSL

#: The paper's measured matrix: (row label, hardware, device, fs)
#: -> (max speed MBps, iowait ratio).
PAPER_TABLE2 = {
    ("HiWiFi + SD card", Filesystem.FAT): (2.37, 0.421),
    ("MiWiFi + SATA hard disk drive", Filesystem.EXT4): (2.37, 0.297),
    ("Newifi + USB flash drive", Filesystem.FAT): (2.12, 0.663),
    ("Newifi + USB flash drive", Filesystem.NTFS): (0.93, 0.151),
    ("Newifi + USB flash drive", Filesystem.EXT4): (2.13, 0.55),
    ("Newifi + USB hard disk drive", Filesystem.FAT): (2.37, 0.42),
    ("Newifi + USB hard disk drive", Filesystem.NTFS): (1.13, 0.098),
    ("Newifi + USB hard disk drive", Filesystem.EXT4): (2.37, 0.174),
}

_ROWS = (
    ("HiWiFi + SD card", HIWIFI_1S, SD_CARD_8GB, (Filesystem.FAT,)),
    ("MiWiFi + SATA hard disk drive", MIWIFI, SATA_HDD_1TB,
     (Filesystem.EXT4,)),
    ("Newifi + USB flash drive", NEWIFI, USB_FLASH_8GB,
     (Filesystem.FAT, Filesystem.NTFS, Filesystem.EXT4)),
    ("Newifi + USB hard disk drive", NEWIFI, USB_HDD_5400,
     (Filesystem.FAT, Filesystem.NTFS, Filesystem.EXT4)),
)


@register("table2")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    network = TESTBED_ADSL.downstream * 0.95   # ~2.37 MBps goodput
    report = ExperimentReport(
        experiment_id="table2",
        title="Max pre-download speed and iowait per device/filesystem")

    table = TextTable(["configuration", "fs", "max speed (MBps)",
                       "paper", "iowait", "paper iowait"],
                      ["", "", ".2f", ".2f", ".3f", ".3f"])
    for label, hardware, device, filesystems in _ROWS:
        for filesystem in filesystems:
            path = WritePath(device, filesystem, hardware.cpu_mhz)
            speed = path.achieved_rate(network)
            iowait = path.iowait_ratio(network)
            paper_speed, paper_iowait = PAPER_TABLE2[(label, filesystem)]
            table.add_row(label, filesystem.value, speed / 1e6,
                          paper_speed, iowait, paper_iowait)
            report.add(f"{label} / {filesystem.value} max speed",
                       paper_speed, speed / 1e6, "MBps")
            report.add(f"{label} / {filesystem.value} iowait",
                       paper_iowait, iowait)
    report.table = table.render()

    # Dynamic confirmation: actually replay top-10 popular requests
    # unthrottled on the slowest configuration and check the measured
    # ceiling matches the analytic one.
    ap = SmartAP(NEWIFI, device=USB_FLASH_8GB,
                 filesystem=Filesystem.NTFS)
    rig_report = context.ap_report  # ensures the sample exists
    from repro.ap.benchrig import ApBenchmarkRig
    rig = ApBenchmarkRig(context.workload.catalog)
    replay = rig.replay_top_popular(context.sample, ap)
    report.add("Newifi NTFS flash replayed max (MBps)", 0.93,
               replay.max_speed() / 1e6, "MBps")
    report.data["replayed_newifi_ntfs"] = replay
    return report
