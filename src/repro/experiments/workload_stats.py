"""Section 3 text statistics: type mix, protocol mix, popularity classes."""

from __future__ import annotations

from collections import Counter

from repro import paper
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.transfer.protocols import Protocol
from repro.workload.filetypes import FileType
from repro.workload.popularity import PopularityClass


@register("workload_stats")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    workload = context.workload
    report = ExperimentReport(
        experiment_id="workload_stats",
        title="Workload characteristics (section 3 text)")

    requests = workload.requests
    total = len(requests)
    type_counts = Counter(request.file_type for request in requests)
    report.add("video request share", paper.VIDEO_REQUEST_SHARE,
               type_counts[FileType.VIDEO] / total)
    report.add("software request share", paper.SOFTWARE_REQUEST_SHARE,
               type_counts[FileType.SOFTWARE] / total)

    protocol_counts = Counter(request.protocol for request in requests)
    report.add("BitTorrent share", paper.BITTORRENT_SHARE,
               protocol_counts[Protocol.BITTORRENT] / total)
    report.add("eMule share", paper.EMULE_SHARE,
               protocol_counts[Protocol.EMULE] / total)
    report.add("HTTP/FTP share", paper.HTTP_FTP_SHARE,
               (protocol_counts[Protocol.HTTP] +
                protocol_counts[Protocol.FTP]) / total)

    file_shares = workload.catalog.class_file_shares()
    request_shares = workload.catalog.class_request_shares()
    report.add("unpopular file share", paper.UNPOPULAR_FILE_SHARE,
               file_shares[PopularityClass.UNPOPULAR])
    report.add("highly popular file share",
               paper.HIGHLY_POPULAR_FILE_SHARE,
               file_shares[PopularityClass.HIGHLY_POPULAR])
    report.add("unpopular request share", paper.UNPOPULAR_REQUEST_SHARE,
               request_shares[PopularityClass.UNPOPULAR])
    report.add("highly popular request share",
               paper.HIGHLY_POPULAR_REQUEST_SHARE,
               request_shares[PopularityClass.HIGHLY_POPULAR])

    table = TextTable(["class", "file share", "request share"],
                      ["", ".4f", ".4f"])
    for klass in PopularityClass:
        table.add_row(klass.value, file_shares[klass],
                      request_shares[klass])
    report.table = table.render()
    report.data["tasks"] = total
    report.data["files"] = len(workload.catalog)
    report.data["users"] = len(workload.users)
    return report
