"""Figure 11: cloud upload-bandwidth burden over the measurement week.

The series is committed upload bandwidth (including the estimated burden
of rejected fetches) in 5-minute bins, rescaled from the simulated scale
to paper units (Gbps at full population).  The lower curve isolates
highly popular files, whose ~40% share motivates Bottleneck 2.
"""

from __future__ import annotations

import numpy as np

from repro import paper
from repro.analysis.tables import TextTable
from repro.analysis.timeseries import peak_of_series
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.sim.clock import DAY, to_gbps

BIN_WIDTH = 300.0   # the paper's 5-minute intervals


@register("fig11")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    result = context.cloud_result
    scale = context.scale

    total = result.bandwidth_series(BIN_WIDTH)
    highly = result.bandwidth_series(BIN_WIDTH, only_highly_popular=True)
    peak_bin, peak_value = peak_of_series(total)

    report = ExperimentReport(
        experiment_id="fig11",
        title="Cloud upload bandwidth burden over the week")
    report.add("peak burden (Gbps, rescaled)",
               to_gbps(paper.CLOUD_PEAK_BURDEN),
               to_gbps(peak_value) / scale, "Gbps")
    report.add("highly popular share of burden",
               paper.HIGHLY_POPULAR_BANDWIDTH_SHARE,
               float(highly.sum() / max(total.sum(), 1.0)))
    report.add("fetch rejection ratio", paper.FETCH_REJECTION_RATIO,
               result.rejection_ratio)
    report.data["peak_day"] = int(peak_bin * BIN_WIDTH / DAY) + 1
    report.data["total_series_gbps"] = to_gbps(total) / scale
    report.data["highly_series_gbps"] = to_gbps(highly) / scale

    table = TextTable(["day", "avg burden (Gbps)", "peak (Gbps)",
                       "highly popular avg (Gbps)"],
                      ["d", ".1f", ".1f", ".1f"])
    bins_per_day = int(DAY / BIN_WIDTH)
    for day in range(7):
        sl = slice(day * bins_per_day, (day + 1) * bins_per_day)
        table.add_row(day + 1, to_gbps(total[sl].mean()) / scale,
                      to_gbps(total[sl].max()) / scale,
                      to_gbps(highly[sl].mean()) / scale)
    report.table = table.render() + \
        "\n(purchased capacity: 30 Gbps; paper peak exceeds it on day 7)"
    return report
