"""Resilience scorecard: how much of the chaos damage the policies undo.

Runs the same fault plan twice over the sharded full-week replay --
policies off, then on -- and scores the delta::

    PYTHONPATH=src python -m repro.experiments.resilience_scorecard \
        --scale 0.002 --out resilience_scorecard.json

The script is deliberately *not* a registered experiment driver: the
EXPERIMENTS.md pipeline reproduces the paper's (fault-free) numbers,
while this scorecard is the repo's own robustness regression gate.  It
exits non-zero unless

* the policies-on run recovers a strictly positive fraction of the
  policies-off failures, and
* the fault-free chaos-driver baseline is identical to the plain
  sharded replay (the injection machinery is provably inert when no
  plan is loaded).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.faults.chaos import (
    DEFAULT_CHAOS_SCALE,
    DEFAULT_WORKLOAD_SEED,
    canonical_json,
    chaos_campaign,
    run_chaos,
)
from repro.faults.plan import FaultPlan, default_chaos_plan
from repro.scale.pipelines import sharded_cloud_stats
from repro.scale.plan import DEFAULT_SHARDS, ShardPlan


def render_scorecard(report: dict, baseline_consistent: bool) -> str:
    recovery = report["recovery"]
    on = report["runs"]["policies_on"]
    off = report["runs"]["policies_off"]
    lines = [
        "RESILIENCE SCORECARD",
        f"  plan:                {report['plan']['name']} "
        f"(seed {report['plan']['seed']}, "
        f"{report['plan']['spec_count']} faults)",
        f"  workload:            scale {report['workload']['scale']}, "
        f"seed {report['workload']['seed']}, "
        f"{report['workload']['shards']} shards",
        f"  tasks:               {on['tasks']}",
        f"  failures (off):      {recovery['policies_off_failures']} "
        f"({off['failure_ratio']:.2%})",
        f"  failures (on):       {recovery['policies_on_failures']} "
        f"({on['failure_ratio']:.2%})",
        f"  recovered:           {recovery['recovered_tasks']} tasks "
        f"({recovery['recovered_fraction']:.1%} of policies-off "
        "failures)",
        f"  policy activity:     {on['faults']['retries']} retries, "
        f"{on['faults']['failovers']} failovers, "
        f"{on['faults']['recoveries']} recoveries, "
        f"{on['faults']['aborts']} aborts",
        f"  baseline consistent: {baseline_consistent} "
        "(fault-free driver == plain replay)",
        f"  report digest:       {report['digest'][:16]}",
    ]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--plan", type=Path, default=None,
                        help="fault plan JSON (default: built-in)")
    parser.add_argument("--scale", type=float,
                        default=DEFAULT_CHAOS_SCALE)
    parser.add_argument("--seed", type=int,
                        default=DEFAULT_WORKLOAD_SEED)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the full JSON report here")
    args = parser.parse_args(argv)

    plan = FaultPlan.from_file(args.plan) if args.plan is not None \
        else default_chaos_plan()
    report = chaos_campaign(args.scale, args.seed, plan=plan,
                            policies="both", shards=args.shards,
                            jobs=args.jobs)

    shard_plan = ShardPlan(scale=args.scale, seed=args.seed,
                           shards=args.shards)
    plain, _info = sharded_cloud_stats(shard_plan, jobs=args.jobs)
    baseline = run_chaos(args.scale, args.seed, plan=None,
                         shards=args.shards, jobs=args.jobs)
    baseline_consistent = baseline == plain

    report["baseline_consistent"] = baseline_consistent
    print(render_scorecard(report, baseline_consistent))
    if args.out is not None:
        from repro.recovery.atomic import atomic_write_text
        atomic_write_text(args.out, canonical_json(report) + "\n")
        print(f"report written to {args.out}")

    recovered = report["recovery"]["recovered_tasks"]
    if recovered <= 0:
        print(f"FAIL: policies recovered {recovered} tasks "
              "(expected > 0)", file=sys.stderr)
        return 1
    if not baseline_consistent:
        print("FAIL: fault-free chaos baseline diverges from the "
              "plain sharded replay", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(None))
