"""Figures 6 and 7: rank-popularity fitting, Zipf vs stretched exponential.

The paper's headline here is comparative: the SE model fits the measured
popularity curve better than Zipf (13.7% vs 15.3% average relative
error), because the fetch-at-most-once behaviour of P2P video flattens
the head below a pure power law.  The absolute fit coefficients depend
on the trace's absolute dimensions, so at reduced scale we reproduce the
*comparison*, and report our own coefficients alongside the paper's.
"""

from __future__ import annotations

from repro import paper
from repro.analysis.fitting import fit_se, fit_zipf
from repro.analysis.tables import TextTable
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context
from repro.workload.popularity import rank_popularity_curve


@register("fig06_07")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    ranks, popularity = rank_popularity_curve(
        context.workload.catalog.demands())
    zipf = fit_zipf(ranks, popularity)
    se = fit_se(ranks, popularity)

    report = ExperimentReport(
        experiment_id="fig06_07",
        title="Popularity distribution: Zipf (Fig. 6) vs SE (Fig. 7)")
    report.add("Zipf fit avg relative error", paper.ZIPF_FIT_ERROR,
               zipf.average_relative_error)
    report.add("SE fit avg relative error", paper.SE_FIT_ERROR,
               se.average_relative_error)
    report.add("Zipf slope a1", paper.ZIPF_A, zipf.a)

    table = TextTable(["model", "a", "b", "c", "avg rel err"],
                      ["", ".4f", ".4f", ".4g", ".4f"])
    table.add_row("zipf (paper)", paper.ZIPF_A, paper.ZIPF_B, 0.0,
                  paper.ZIPF_FIT_ERROR)
    table.add_row("zipf (measured)", zipf.a, zipf.b, 0.0,
                  zipf.average_relative_error)
    table.add_row("se (paper)", paper.SE_A, paper.SE_B, paper.SE_C,
                  paper.SE_FIT_ERROR)
    table.add_row("se (measured)", se.a, se.b, se.c,
                  se.average_relative_error)
    report.table = table.render()
    report.data["se_beats_zipf"] = \
        se.average_relative_error < zipf.average_relative_error
    report.data["zipf"] = zipf
    report.data["se"] = se
    return report
