"""Backend matrix: the registry's (backend set, policy) combinations.

The paper evaluates two offline-downloading families (cloud, smart AP)
and one combination rule (ODR).  The ``repro.backends`` registry
generalises that into composable backends and policies; this driver
replays one deterministic trace slice through every shipped combination
and reports how much cloud traffic each one removes relative to the
cloud-only baseline, alongside its completion-delay quantiles.

The matrix is the repo's own extension (D2D and cooperative AP caching
are designed in the spirit of the related work, not measured by the
paper), so the only paper-anchored row is ODR's bandwidth reduction --
the rest of the scorecard is rendered as a table.
"""

from __future__ import annotations

from repro import paper
from repro.experiments.base import ExperimentReport, register
from repro.experiments.context import ExperimentContext, default_context

#: Trace rows replayed per combination -- enough for stable shares at
#: documentation scale while staying a small fraction of the runner's
#: wall clock.
MATRIX_LIMIT = 400


@register("backend_matrix")
def run(context: ExperimentContext | None = None) -> ExperimentReport:
    context = context or default_context()
    from repro.backends.replay import compare, format_scorecard

    scorecard = compare(scale=context.scale, seed=context.seed,
                        limit=MATRIX_LIMIT)
    report = ExperimentReport(
        experiment_id="backend_matrix",
        title="Multi-backend ODR: (backend set, policy) comparison")

    by_name = {row["name"]: row for row in scorecard["combos"]}
    odr = by_name.get("cloud+ap/odr")
    if odr is not None:
        report.add("ODR cloud bandwidth reduction",
                   paper.ODR_BANDWIDTH_REDUCTION,
                   odr["cloud_bytes_saved_vs_baseline"])
    report.table = format_scorecard(scorecard)
    report.data = {"digest": scorecard["digest"],
                   "combos": scorecard["combos"]}
    return report
