"""Run every registered experiment and render EXPERIMENTS.md.

Usage::

    python -m repro.experiments.runner --scale 0.01 --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from pathlib import Path
from typing import Sequence

from repro.experiments import REGISTRY, default_context
from repro.experiments.base import ExperimentReport
from repro.experiments.context import (
    DEFAULT_SCALE,
    ExperimentContext,
    ExperimentFailure,
)
from repro.obs import NOOP, span

#: Paper-section ordering for the document.
ORDER = [
    "workload_stats", "fig05", "fig06_07", "fig08", "fig09", "fig10",
    "fig11", "cloud_text", "table1", "fig13_14", "ap_failures",
    "table2", "fig16", "fig17", "backend_matrix",
]


def run_all(context: ExperimentContext | None = None
            ) -> list[ExperimentReport]:
    """Execute every registered experiment against one shared context.

    Each driver runs inside a tracing span; its wall-clock seconds land
    in ``context.timings`` and (when the context carries a live
    registry) in ``repro_experiments_wall_seconds`` gauges, alongside
    the peak simulation heap depth exposed as
    ``context.peak_heap_depth``.
    """
    context = context or default_context()
    missing = sorted(set(REGISTRY) - set(ORDER))
    reports = []
    for experiment_id in ORDER + missing:
        try:
            with span(context.metrics, "experiment", id=experiment_id):
                started = time.perf_counter()
                report = REGISTRY[experiment_id](context)
                elapsed = time.perf_counter() - started
        except Exception as error:   # noqa: BLE001 - degrade, not die
            # One broken driver must not take down the whole document:
            # record it, keep going, and let main() exit non-zero.
            context.failures.append(ExperimentFailure(
                experiment_id=experiment_id,
                error=f"{type(error).__name__}: {error}",
                traceback=traceback.format_exc()))
            context.metrics.counter("repro_experiments_failures_total",
                                    experiment=experiment_id).inc()
            continue
        context.timings[experiment_id] = elapsed
        context.metrics.gauge("repro_experiments_wall_seconds",
                              experiment=experiment_id).set(elapsed)
        reports.append(report)
    return reports


def render_experiments_md(reports: list[ExperimentReport],
                          scale: float,
                          failures: Sequence[ExperimentFailure] = ()
                          ) -> str:
    lines = [
        "# EXPERIMENTS -- paper vs measured",
        "",
        "Reproduction of every table and figure in \"Offline Downloading"
        " in China: A Comparative Study\" (IMC 2015).",
        "",
        f"All rows below were produced by `python -m "
        f"repro.experiments.runner --scale {scale}` -- a synthetic week "
        f"at {scale:.0%} of the real trace's dimensions, simulated "
        "end-to-end (no numbers are hard-coded into the pipeline; the "
        "`paper=` column comes from `repro.paper`, the `measured=` "
        "column from the simulation).",
        "",
        "Scale-free quantities (ratios, shares, medians of per-flow "
        "distributions) compare directly; bandwidth totals are rescaled "
        "to paper units by the population scale factor.",
        "",
        "## Known divergences and why",
        "",
        "* **Cloud failure levels** (paper 8.7% overall / 13% unpopular /"
        " 16.4% no-cache). The paper's trio of cache statistics (89% "
        "request-level hits, 8.7% with-cache and 16.4% no-cache "
        "failures) is mutually over-determined under any mechanistic "
        "cache model: with an 89% hit ratio, failures can only occur on "
        "the 11% of misses, which caps the with-cache failure ratio "
        "well below 8.7% unless per-miss failure approaches 80%. The "
        "simulator matches the hit ratio, the popularity-failure "
        "correlation (Fig. 10), and the cache's *halving* of the "
        "failure ratio; the absolute failure levels land lower "
        "(~3% / ~9% / ~7%).",
        "* **Pre-download near-zero share** (paper 21%, measured "
        "~25-30%). The cloud's attempt population is miss-biased toward "
        "dead-source files; the production system's attempt mix was "
        "shaped by years of cache history we cannot observe.",
        "* **Fetch/e2e delay means** (paper 27 / 68 min). The paper's "
        "fetch trace records 'finish/pause' times, so user-paused slow "
        "fetches truncate their recorded delays; the simulator lets "
        "slow fetches run to completion, lengthening the mean (medians "
        "agree).",
        "* **Fig. 6/7 fit coefficients**. Absolute Zipf/SE intercepts "
        "depend on the trace's absolute dimensions; at reduced scale we "
        "reproduce the comparative claim (SE beats Zipf, flattened "
        "head) and report our own coefficients.",
        "* **ISP-barrier share** (paper 9.6%, measured ~10-14%). At "
        "reduced scale the per-ISP upload pools hold few concurrent "
        "flows, so admission granularity produces extra overflow onto "
        "cross-ISP paths during peaks; the artefact shrinks as "
        "``--scale`` grows.",
        "* **B3 under ODR** (paper 13%, measured ~4%). The paper quotes "
        "the cloud's production unpopular-failure level; our replay "
        "runs after the simulated week, when the cache already covers "
        "most sampled files, so ODR's measured unpopular failure is "
        "even lower.",
        "",
    ]
    for report in reports:
        lines.append(f"## {report.experiment_id}: {report.title}")
        lines.append("")
        lines.append("```")
        lines.append(report.render())
        lines.append("```")
        lines.append("")
    for failure in failures:
        lines.append(f"## {failure.experiment_id}: FAILED")
        lines.append("")
        lines.append(f"This experiment raised `{failure.error}` and "
                     "produced no results; the rest of the document "
                     "is unaffected.")
        lines.append("")
        lines.append("```")
        lines.append(failure.traceback.rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="fraction of the real week to synthesise")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed (default: the context's)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="run driver groups in N worker processes "
                             "(repro.scale); results are independent of "
                             "N, including N=1")
    parser.add_argument("--run-dir", type=Path, default=None,
                        help="durable run: checkpoint each finished "
                             "experiment group here (resumable)")
    parser.add_argument("--resume", type=Path, default=None,
                        help="resume a --run-dir: completed groups are "
                             "reloaded from their checkpoints, only "
                             "unfinished groups are recomputed")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        help="per-group watchdog seconds (with "
                             "--run-dir/--resume)")
    parser.add_argument("--max-shard-retries", type=int, default=None,
                        help="requeue budget for a lost group worker")
    parser.add_argument("--output", type=Path, default=None,
                        help="write EXPERIMENTS.md here (default: stdout)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="instrument the run and write metrics here")
    parser.add_argument("--metrics-format",
                        choices=("jsonl", "prom", "table"),
                        default="jsonl")
    args = parser.parse_args(argv)

    from repro.experiments.context import DEFAULT_SEED
    seed = args.seed if args.seed is not None else DEFAULT_SEED
    from repro.experiments.scorecard import Scorecard, evaluate_claims
    recovery = None
    if args.resume is not None or args.run_dir is not None:
        from repro.recovery import RecoveryConfig
        from repro.recovery.durable import DEFAULT_MAX_RETRIES
        recovery = RecoveryConfig(
            run_dir=args.resume or args.run_dir,
            resume=args.resume is not None,
            shard_timeout=args.shard_timeout,
            max_shard_retries=args.max_shard_retries
            if args.max_shard_retries is not None
            else DEFAULT_MAX_RETRIES)
    if args.jobs is not None or recovery is not None:
        # The parallel group runner: same document for any --jobs value
        # (each driver group rebuilds its artefacts in a fresh context,
        # so this path's numbers differ slightly from the shared-context
        # sequential path where later drivers see mutated artefacts).
        # --run-dir/--resume route here too: group checkpoints belong
        # to this path, where every group is a self-contained worker.
        from repro.scale.runner import run_parallel
        metrics = NOOP
        if args.metrics_out is not None:
            from repro.obs import MetricsRegistry
            metrics = MetricsRegistry()
        reports, claims, _timings, failures = run_parallel(
            args.scale, seed, jobs=args.jobs or 1, metrics=metrics,
            recovery=recovery)
        context = ExperimentContext(scale=args.scale, seed=seed,
                                    metrics=metrics)
        context.failures.extend(failures)
    else:
        context = default_context(scale=args.scale, seed=seed)
        if args.metrics_out is not None:
            from repro.obs import MetricsRegistry
            context.metrics = MetricsRegistry()
        reports = run_all(context)
        claims = evaluate_claims(context)
    document = render_experiments_md(reports, args.scale,
                                     failures=context.failures)

    scorecard = Scorecard(reports=reports, claims=claims)
    document += "\n## Reproduction scorecard\n\n```\n" + \
        scorecard.render() + "\n```\n"
    if args.output is not None:
        # Atomic so a crash mid-write can never corrupt the previous
        # good EXPERIMENTS.md.
        from repro.recovery.atomic import atomic_write_text
        atomic_write_text(args.output, document)
        print(f"wrote {args.output} ({len(reports)} experiments)")
    else:
        print(document)
    if args.metrics_out is not None:
        from repro.obs import export
        export(context.metrics, args.metrics_format, args.metrics_out)
        print(f"wrote {args.metrics_format} metrics to "
              f"{args.metrics_out}")
    if context.failures:
        for failure in context.failures:
            print(f"EXPERIMENT FAILED {failure.experiment_id}: "
                  f"{failure.error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
