"""Bench: Table 2 -- max pre-download speed and iowait per device/fs."""

from conftest import print_report

from repro.experiments import REGISTRY
from repro.experiments.table2_storage import PAPER_TABLE2


def test_bench_table2(benchmark, warm_context):
    report = benchmark.pedantic(
        lambda: REGISTRY["table2"](warm_context), rounds=1, iterations=1)
    print_report(report)

    # Every analytic cell within 5% of the paper's measurement.
    for row in report.comparisons:
        if "replayed" in row.quantity:
            continue
        assert row.relative_error < 0.06, row.quantity

    # The dynamic replay confirms the slowest configuration's ceiling.
    replayed = {row.quantity: row for row in report.comparisons}[
        "Newifi NTFS flash replayed max (MBps)"]
    assert replayed.relative_error < 0.03

    # Structural claims of section 5.2's discussion:
    speeds = {key: value[0] for key, value in PAPER_TABLE2.items()}
    # NTFS is always the slowest filesystem on a given device...
    from repro.storage import Filesystem
    flash = "Newifi + USB flash drive"
    hdd = "Newifi + USB hard disk drive"
    assert speeds[(flash, Filesystem.NTFS)] < \
        min(speeds[(flash, Filesystem.FAT)],
            speeds[(flash, Filesystem.EXT4)])
    # ...and the USB HDD beats the USB flash drive on every filesystem.
    for fs in Filesystem:
        assert speeds[(hdd, fs)] >= speeds[(flash, fs)]
