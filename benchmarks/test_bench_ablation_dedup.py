"""Ablation: file-level vs chunk-level deduplication.

Section 2.1: "Xuanfeng does not utilize chunk-level deduplication to
avoid trading high chunking complexity for low (<1%) storage space
savings."  This bench quantifies both sides: the real savings of
file-level dedup under the synthetic workload, and the marginal extra
that chunking would add.
"""

from repro.storage.dedup import ContentStore


def test_bench_ablation_dedup(benchmark, context):
    workload = context.workload

    def ingest_week():
        store = ContentStore()
        for request in workload.requests:
            record = workload.catalog[request.file_id]
            store.add(record.file_id, record.size)
        return store

    store = benchmark.pedantic(ingest_week, rounds=1, iterations=1)

    file_level_savings = store.logical_bytes - store.physical_bytes
    chunk_extra = store.estimate_chunk_dedup_savings()
    print(f"\nlogical {store.logical_bytes / 1e12:.2f} TB, physical "
          f"{store.physical_bytes / 1e12:.2f} TB "
          f"(dedup ratio {store.dedup_ratio:.2f}x)")
    print(f"file-level savings: {file_level_savings / 1e12:.2f} TB; "
          f"chunk-level extra: {chunk_extra / 1e9:.1f} GB "
          f"({chunk_extra / store.physical_bytes:.2%})")

    # File-level dedup is transformative (requests repeat files ~7x)...
    assert store.dedup_ratio > 3.0
    # ...while chunking would reclaim under 1% more.
    assert chunk_extra < 0.01 * store.physical_bytes
    assert chunk_extra < 0.01 * file_level_savings
