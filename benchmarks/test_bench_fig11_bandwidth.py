"""Bench: Figure 11 -- cloud upload-bandwidth burden over the week."""

import numpy as np
from conftest import print_report

from repro.experiments import REGISTRY
from repro.sim.clock import DAY


def test_bench_fig11(benchmark, warm_context):
    report = benchmark.pedantic(
        lambda: REGISTRY["fig11"](warm_context), rounds=1, iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}

    # Peak pierces the 30 Gbps purchased capacity late in the week.
    peak = rows["peak burden (Gbps, rescaled)"].measured_value
    assert 30.0 < peak < 45.0
    assert report.data["peak_day"] >= 4

    # Highly popular files burn a large share (~40%) of the bandwidth.
    share = rows["highly popular share of burden"].measured_value
    assert 0.25 < share < 0.55

    # Rejections exist but stay small (paper: 1.5%).
    assert 0.001 < rows["fetch rejection ratio"].measured_value < 0.05

    # Diurnal structure: within-day peak well above within-day trough.
    series = report.data["total_series_gbps"]
    bins_per_day = int(DAY / 300.0)
    day_three = series[2 * bins_per_day:3 * bins_per_day]
    assert day_three.max() > 1.5 * day_three.min()

    # Rising trend: the last day's average beats the first day's.
    first = series[:bins_per_day].mean()
    last = series[6 * bins_per_day:].mean()
    assert last > 1.2 * first
