"""Extension bench: LEDBAT seeding on the cloud's upload links.

Section 6.1: "ODR can learn from LEDBAT to further mitigate the
cloud-side upload bandwidth burden."  The seeding traffic ODR introduces
(cloud seeding highly popular swarms) should ride the upload links as a
background scavenger: full rate in the nightly troughs, out of the way
at the evening peak.  This bench drives the RFC 6817 controller with
the simulated week's real burden profile and checks both properties.
"""

import numpy as np
from conftest import BENCH_SCALE

from repro.transfer.ledbat import BottleneckLink, simulate_scavenging
from repro.sim.clock import DAY, to_gbps

BIN_WIDTH = 300.0


def test_bench_ext_ledbat_seeding(benchmark, warm_context):
    result = warm_context.cloud_result
    capacity = result.config.scaled_upload_capacity

    # Foreground: the measured per-bin fetch burden of day 6 (a busy
    # day), compressed so each 5-minute bin becomes one second of fluid
    # simulation -- the diurnal shape is what matters.
    series = result.bandwidth_series(BIN_WIDTH)
    bins_per_day = int(DAY / BIN_WIDTH)
    day6 = series[5 * bins_per_day:6 * bins_per_day]
    steps_per_bin = 10
    profile = np.repeat(day6, steps_per_bin)

    link = BottleneckLink(capacity=capacity, propagation_delay=0.03,
                          max_queue_bytes=0.5 * capacity)

    def run():
        return simulate_scavenging(link, list(profile), step=0.1)

    scavenge = benchmark.pedantic(run, rounds=1, iterations=1)

    rates = np.array(scavenge.ledbat_rate_series)
    foreground = profile
    idle_mask = foreground < 0.5 * capacity
    busy_mask = foreground > 0.8 * capacity
    idle_rate = rates[idle_mask].mean() if idle_mask.any() else 0.0
    busy_rate = rates[busy_mask].mean() if busy_mask.any() else 0.0

    print(f"\nseeding rate in troughs: "
          f"{to_gbps(idle_rate) / BENCH_SCALE:.1f} Gbps; at the peak: "
          f"{to_gbps(busy_rate) / BENCH_SCALE:.1f} Gbps "
          f"(capacity {to_gbps(capacity) / BENCH_SCALE:.0f} Gbps)")
    print(f"mean extra queueing delay: "
          f"{scavenge.mean_queueing_delay * 1e3:.0f} ms")

    # Scavenges real bandwidth off-peak...
    assert idle_rate > 0.2 * capacity
    # ...yields hard when the fetch traffic peaks...
    if busy_mask.any():
        assert busy_rate < 0.5 * idle_rate
    # ...and never builds a painful standing queue.
    assert scavenge.mean_queueing_delay < 0.4
