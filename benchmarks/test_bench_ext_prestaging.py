"""Extension bench: content pre-staging against the Figure 11 peak.

Applies the section 6.1 pre-staging idea (Finamore et al.) to the
simulated week: fetches of users willing to wait a few hours are
re-packed into the burden troughs by water-filling, and the day-7 peak
-- the one that pierces the 30 Gbps purchased capacity -- drops.
"""

import numpy as np
from conftest import BENCH_SCALE

from repro.analysis.timeseries import bin_rate_series
from repro.core.prestaging import PrestagingScheduler, \
    deferrable_from_flows
from repro.sim.clock import HOUR, to_gbps

BIN_WIDTH = 300.0
#: Share of users elastic enough to defer, and how long they will wait.
ELASTIC_SHARE = 0.5
SLACK = 8 * HOUR


def test_bench_ext_prestaging(benchmark, warm_context):
    result = warm_context.cloud_result
    flows = [flow for flow in result.flows if not flow.rejected]

    # Every second flow is elastic (a deterministic 50% split).  The
    # series is padded by one slack window past the week so late-week
    # deferrals land in next week's trough instead of being clipped.
    elastic = flows[::2]
    inelastic = flows[1::2]
    padded_horizon = result.horizon + SLACK
    week_bins = int(result.horizon / BIN_WIDTH)

    deferrables, leftovers = deferrable_from_flows(
        elastic, padded_horizon, SLACK)
    inelastic_series = bin_rate_series(
        [(flow.start, flow.end, flow.rate)
         for flow in inelastic + leftovers],
        BIN_WIDTH, padded_horizon)

    def schedule():
        scheduler = PrestagingScheduler(inelastic_series, BIN_WIDTH)
        return scheduler.schedule(deferrables)

    scheduled = benchmark.pedantic(schedule, rounds=1, iterations=1)

    # The naive (no pre-staging) series for comparison:
    naive_series = bin_rate_series(
        [(flow.start, flow.end, flow.rate) for flow in flows],
        BIN_WIDTH, result.horizon)
    naive_peak = to_gbps(naive_series.max()) / BENCH_SCALE
    week_series = scheduled.scheduled_series[:week_bins]
    staged_peak = to_gbps(week_series.max()) / BENCH_SCALE
    spill_peak = to_gbps(
        scheduled.scheduled_series[week_bins:].max()) / BENCH_SCALE
    print(f"\npeak burden: naive {naive_peak:.1f} Gbps -> pre-staged "
          f"{staged_peak:.1f} Gbps (spillover peak {spill_peak:.1f}) "
          f"({ELASTIC_SHARE:.0%} elastic users, {SLACK / HOUR:.0f} h "
          f"slack)")

    # Pre-staging flattens the within-week peak materially...
    assert staged_peak < 0.85 * naive_peak
    # ...without just exporting a new peak into the spill window...
    assert spill_peak < naive_peak
    # ...while moving exactly the elastic volume (conservation).
    poured = (scheduled.scheduled_series -
              scheduled.baseline_series).sum() * BIN_WIDTH
    expected = sum(flow.volume_bytes for flow in deferrables)
    assert abs(poured - expected) / expected < 1e-6
