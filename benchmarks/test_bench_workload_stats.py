"""Bench: section 3 workload characteristics (type/protocol/class mixes).

Times the full workload synthesis and asserts the section 3 text
statistics stay inside the reproduction bands.
"""

from conftest import BENCH_SCALE, print_report

from repro.experiments import REGISTRY
from repro.workload import WorkloadConfig, WorkloadGenerator


def test_bench_workload_synthesis(benchmark, context):
    def synthesize():
        config = WorkloadConfig(scale=min(BENCH_SCALE, 0.005), seed=7)
        return WorkloadGenerator(config).generate()

    workload = benchmark.pedantic(synthesize, rounds=1, iterations=1)
    assert len(workload.requests) > 1000


def test_workload_stats_reproduction(benchmark, context):
    report = benchmark.pedantic(
        lambda: REGISTRY["workload_stats"](context), rounds=1,
        iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}
    assert rows["video request share"].relative_error < 0.10
    assert rows["software request share"].relative_error < 0.30
    assert rows["unpopular file share"].relative_error < 0.03
    assert rows["unpopular request share"].relative_error < 0.12
    # The highly-popular request share rides a heavy-tailed per-file
    # demand distribution; per-seed wobble of +-25% is expected.
    assert rows["highly popular request share"].relative_error < 0.25
    assert rows["BitTorrent share"].relative_error < 0.10
