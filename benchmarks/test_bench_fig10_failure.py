"""Bench: Figure 10 -- popularity vs pre-download failure ratio."""

from conftest import print_report

from repro.experiments import REGISTRY


def test_bench_fig10(benchmark, warm_context):
    report = benchmark.pedantic(
        lambda: REGISTRY["fig10"](warm_context), rounds=1, iterations=1)
    print_report(report)
    # The scatter's defining property: failure decreases with popularity.
    ratios = report.data["bucket_ratios"]
    assert ratios[0] > 0.02                   # unpopular files do fail
    assert ratios[0] > ratios[-1] * 3         # highly popular barely do
    assert report.data["decreasing"] or ratios[0] >= max(ratios[1:])
