"""Bench: Figure 13 -- smart-AP pre-download speed CDF vs cloud.

The benchmarked quantity is the full section 5.1 replay: 1000 sampled
requests sequentially across the three APs.
"""

from conftest import print_report

from repro.ap.benchrig import ApBenchmarkRig
from repro.experiments import REGISTRY
from repro.sim.clock import kbps


def test_bench_ap_replay_campaign(benchmark, context):
    workload = context.workload
    sample = context.sample

    def replay():
        return ApBenchmarkRig(workload.catalog).replay(sample)

    report = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert len(report.results) == len(sample)


def test_fig13_reproduction(benchmark, warm_context):
    report = benchmark.pedantic(
        lambda: REGISTRY["fig13_14"](warm_context), rounds=1,
        iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}
    assert rows["AP speed median (KBps)"].relative_error < 0.40
    assert rows["AP speed mean (KBps)"].relative_error < 0.40

    ap_speed = report.data["ap_speed"]
    # Shape facts from the figure: a fat low tail (failures + thin
    # swarms) and a long but truncated upper tail.
    assert ap_speed.probability_below(kbps(5.0)) > 0.10
    assert ap_speed.max <= 2.375e6 + 1e-6

    # Per-AP ceilings: Newifi (NTFS flash) truncates lowest.
    per_ap = report.data["per_ap"]
    assert per_ap["Newifi"].max <= 0.94e6
    assert per_ap["HiWiFi (1S)"].max > per_ap["Newifi"].max
