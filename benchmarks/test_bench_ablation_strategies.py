"""Ablation: ODR against every redirection baseline.

Extends Figure 16 with the strategies the paper discusses in related
work: the commercial always-hybrid mode and Zhou et al.'s AMS.  ODR
should be the only strategy that simultaneously dodges all four
bottlenecks.
"""

from conftest import print_report

from repro.analysis.tables import TextTable
from repro.core import (
    AlwaysHybridStrategy,
    AmsStrategy,
    CloudOnlyStrategy,
    OdrMiddleware,
    OdrStrategy,
    SmartApOnlyStrategy,
)


def test_bench_ablation_strategies(benchmark, warm_context):
    evaluator = warm_context.evaluator()
    sample = warm_context.sample
    database = warm_context.cloud.database
    strategies = [
        OdrStrategy(OdrMiddleware(database)),
        CloudOnlyStrategy(database),
        SmartApOnlyStrategy(),
        AlwaysHybridStrategy(database),
        AmsStrategy(database),
    ]

    def run_all():
        return {strategy.name: evaluator.replay(sample, strategy)
                for strategy in strategies}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline = results["cloud-only"]

    table = TextTable(["strategy", "B1 impeded", "B2 cloud bytes",
                       "B3 unpopular fail", "B4 limited",
                       "median KBps"],
                      ["", ".3f", ".2f", ".3f", ".3f", ".0f"])
    for name, result in results.items():
        table.add_row(name, result.impeded_share,
                      result.cloud_bandwidth_bytes /
                      max(baseline.cloud_bandwidth_bytes, 1.0),
                      result.unpopular_failure_ratio,
                      result.write_path_limited_share,
                      result.fetch_speed_cdf().median / 1e3)
    print("\n" + table.render())

    odr = results["odr"]
    # ODR dominates every baseline on at least one bottleneck and never
    # loses badly on any:
    assert odr.impeded_share <= results["cloud-only"].impeded_share
    assert odr.impeded_share <= results["ams"].impeded_share
    assert odr.cloud_bandwidth_bytes < \
        0.75 * results["always-hybrid"].cloud_bandwidth_bytes
    assert odr.unpopular_failure_ratio < \
        results["smart-ap-only"].unpopular_failure_ratio / 2
    assert odr.write_path_limited_share == 0.0
    assert results["always-hybrid"].write_path_limited_share > 0.0
    assert results["ams"].write_path_limited_share > 0.0
