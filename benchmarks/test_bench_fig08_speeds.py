"""Bench: Figure 8 -- cloud pre-download / fetch / end-to-end speed CDFs.

The first bench in the session to touch the cloud run pays for the whole
simulated week; the timing of that simulation is itself the benchmarked
quantity here.
"""

from conftest import BENCH_SCALE, print_report

from repro.cloud import CloudConfig, XuanfengCloud
from repro.experiments import REGISTRY


def test_bench_cloud_week_simulation(benchmark, context):
    workload = context.workload

    def run_week():
        return XuanfengCloud(CloudConfig(scale=BENCH_SCALE)).run(workload)

    result = benchmark.pedantic(run_week, rounds=1, iterations=1)
    assert len(result.tasks) == len(workload.requests)


def test_fig08_reproduction(benchmark, context):
    report = benchmark.pedantic(
        lambda: REGISTRY["fig08"](context), rounds=1, iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}
    # Shape targets: fetch an order of magnitude above pre-download.
    assert rows["fetch median (KBps)"].relative_error < 0.25
    assert rows["fetch mean (KBps)"].relative_error < 0.25
    assert rows["pre-download median (KBps)"].relative_error < 0.60
    assert rows["e2e median (KBps)"].relative_error < 0.30
    speedup = rows["fetch/pre median speed-up"]
    assert speedup.measured_value > 5.0
