"""Bench: section 4 text statistics (caching, failures, traffic)."""

from conftest import print_report

from repro.experiments import REGISTRY


def test_bench_cloud_text(benchmark, warm_context):
    report = benchmark.pedantic(
        lambda: REGISTRY["cloud_text"](warm_context), rounds=1,
        iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}

    assert rows["cache hit ratio"].relative_error < 0.05
    assert rows["pre-download traffic overhead"].relative_error < 0.10
    assert rows["user-side traffic overhead"].relative_error < 0.02
    assert rows["impeded fetch share"].relative_error < 0.25
    assert rows["impeded by ISP barrier"].relative_error < 0.40

    # The cache cuts the failure ratio by at least ~40% (paper: halves
    # it, 16.4% -> 8.7%; see EXPERIMENTS.md for the absolute-level
    # divergence discussion).
    with_cache = rows["request-level failure ratio"].measured_value
    without = rows["failure ratio without the storage pool"] \
        .measured_value
    assert with_cache < 0.6 * without
