"""Ablation: pre-downloader fleet sizing.

The paper's cloud runs "nearly 500 commodity servers" worth of
pre-downloading VMs and its traces show no pre-download queueing; this
sweep shows what skimping would cost -- cache misses queue FIFO for a
VM, and the pre-download delay distribution balloons while failure
ratios stay flat (queueing postpones attempts; it does not save dead
sources).
"""

from conftest import BENCH_SCALE

from repro.analysis.tables import TextTable
from repro.cloud import CloudConfig, XuanfengCloud
from repro.sim.clock import MINUTE
from repro.workload import WorkloadConfig, WorkloadGenerator
from repro.workload.popularity import PopularityClass

SWEEP_SCALE = min(BENCH_SCALE, 0.004)
FLEETS = (2, 8, None)
COLD = {klass: 0.0 for klass in PopularityClass}


def test_bench_ablation_fleet_sizing(benchmark):
    workload = WorkloadGenerator(
        WorkloadConfig(scale=SWEEP_SCALE, seed=31)).generate()

    def sweep():
        results = {}
        for fleet in FLEETS:
            cloud = XuanfengCloud(CloudConfig(
                scale=SWEEP_SCALE, predownloader_count=fleet,
                precached_probability=COLD))
            results[fleet] = (cloud, cloud.run(workload))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = TextTable(["fleet size", "mean pre-dl delay (min)",
                       "mean VM wait (min)", "failure ratio"],
                      ["", ".0f", ".1f", ".3f"])
    delays = {}
    for fleet, (cloud, result) in results.items():
        delay = result.attempt_delay_cdf().mean
        wait = cloud._vm_slots.mean_wait_time if cloud._vm_slots \
            else 0.0
        delays[fleet] = delay
        table.add_row(str(fleet or "unbounded"), delay / MINUTE,
                      wait / MINUTE, result.request_failure_ratio)
    print("\n" + table.render())

    # Queueing hurts delay monotonically as the fleet shrinks...
    assert delays[2] > delays[8] >= delays[None] * 0.95
    # ...but does not change what ultimately succeeds.
    failure_spread = [result.request_failure_ratio
                      for _cloud, result in results.values()]
    assert max(failure_spread) - min(failure_spread) < 0.05
