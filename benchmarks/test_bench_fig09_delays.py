"""Bench: Figure 9 -- cloud pre-download / fetch / end-to-end delay CDFs."""

from conftest import print_report

from repro.experiments import REGISTRY


def test_bench_fig09(benchmark, warm_context):
    report = benchmark.pedantic(
        lambda: REGISTRY["fig09"](warm_context), rounds=1, iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}
    assert rows["pre-download median (min)"].relative_error < 0.40
    assert rows["fetch median (min)"].relative_error < 0.50
    assert rows["e2e median (min)"].relative_error < 0.50
    # Shape: pre-download delays dwarf fetch delays (paper: 12-14x).
    ratio = rows["pre/fetch median delay ratio"].measured_value
    assert ratio > 4.0
    # And end-to-end tracks fetch, not pre-download (89% cache hits).
    pre = report.data["pre"]
    fetch = report.data["fetch"]
    e2e = report.data["e2e"]
    assert abs(e2e.median - fetch.median) < abs(e2e.median - pre.median)
