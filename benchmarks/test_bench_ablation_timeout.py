"""Ablation: the one-hour stagnation-timeout rule.

The paper justifies the rule empirically: "if the pre-downloading
progress of a requested file stagnates for an hour, then this file can
hardly be successfully pre-downloaded even if the timeout threshold is
set to be one week."  In the model, stalls come from dead sources, so
extra patience buys no successes -- it only multiplies the time wasted
per failure.  The sweep quantifies that trade-off.
"""

import numpy as np
from conftest import print_report

from repro.analysis.tables import TextTable
from repro.cloud import CloudConfig
from repro.cloud.predownload import PreDownloaderFleet
from repro.sim.clock import HOUR
from repro.transfer.session import DownloadSession, SessionLimits
from repro.transfer.source import CLOUD_VANTAGE

TIMEOUTS = (0.25 * HOUR, 1.0 * HOUR, 4.0 * HOUR, 12.0 * HOUR)


def sweep(context, timeout: float, sample_size: int = 1200):
    fleet = PreDownloaderFleet(CloudConfig(scale=context.scale,
                                           stagnation_timeout=timeout))
    rng = np.random.default_rng(int(timeout))
    requests = context.workload.requests[:sample_size]
    failures, wasted = 0, 0.0
    for request in requests:
        record = context.workload.catalog[request.file_id]
        limits = SessionLimits(rate_caps=(2.5e6,),
                               stagnation_timeout=timeout)
        session = DownloadSession(fleet.source_for(record), record.size,
                                  CLOUD_VANTAGE, limits=limits)
        outcome = session.simulate(rng)
        if not outcome.success:
            failures += 1
            wasted += outcome.duration
    return failures / len(requests), wasted / HOUR


def test_bench_ablation_stagnation_timeout(benchmark, context):
    context.workload   # materialise outside the timed region

    def run_sweep():
        return {timeout: sweep(context, timeout)
                for timeout in TIMEOUTS}

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = TextTable(["timeout (h)", "failure ratio",
                       "wasted hours (total)"], [".2f", ".3f", ".0f"])
    for timeout, (failure_ratio, wasted_hours) in results.items():
        table.add_row(timeout / HOUR, failure_ratio, wasted_hours)
    print("\n" + table.render())

    ratios = [results[t][0] for t in TIMEOUTS]
    wasted = [results[t][1] for t in TIMEOUTS]
    # Patience does not buy success: failure ratios stay flat (within
    # noise) from 15 minutes to 12 hours...
    assert max(ratios) - min(ratios) < 0.05
    # ...but the wasted time grows monotonically with the threshold
    # (sub-linearly only because week-long too-slow-to-finish failures
    # contribute a constant floor).
    assert wasted == sorted(wasted)
    assert wasted[-1] > 2.0 * wasted[1]
    # So the paper's one-hour rule sits at the knee: nearly all the
    # failure detection at a fraction of the waste.
    assert wasted[1] < 2.5 * wasted[0]
