"""Bench: Figure 14 -- smart-AP pre-download delay CDF vs cloud."""

from conftest import print_report

from repro.experiments import REGISTRY
from repro.sim.clock import HOUR, MINUTE


def test_bench_fig14(benchmark, warm_context):
    report = benchmark.pedantic(
        lambda: REGISTRY["fig13_14"](warm_context), rounds=1,
        iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}
    assert rows["AP delay median (min)"].relative_error < 0.45
    assert rows["AP delay mean (min)"].relative_error < 0.40

    ap_delay = report.data["ap_delay"]
    # The mean is several times the median: a heavy tail of very slow
    # pre-downloads, as in the paper (77 min median vs 402 min mean).
    assert ap_delay.mean > 2.5 * ap_delay.median
    # Failures show up as ~1 hour stagnation give-ups.
    assert ap_delay.probability_below(1.26 * HOUR) > \
        ap_delay.probability_below(0.9 * HOUR)
    # Delays live on the scale of hours, not seconds.
    assert 20 * MINUTE < ap_delay.median < 4 * HOUR
