"""Bench: Figure 7 -- stretched-exponential fit of the popularity curve."""

from conftest import print_report

from repro.analysis.fitting import fit_se, fit_zipf
from repro.experiments import REGISTRY
from repro.workload.popularity import rank_popularity_curve


def test_bench_fig07_se_fit(benchmark, context):
    ranks, popularity = rank_popularity_curve(
        context.workload.catalog.demands())

    fit = benchmark(fit_se, ranks, popularity)
    assert fit.c > 0
    assert fit.average_relative_error < 0.5


def test_se_beats_zipf_at_the_head(benchmark, context):
    """The paper's Figure 6 vs 7 comparison, including the head region
    (the most popular files) where Zipf overshoots."""
    ranks, popularity = rank_popularity_curve(
        context.workload.catalog.demands())
    zipf, se = benchmark.pedantic(
        lambda: (fit_zipf(ranks, popularity),
                 fit_se(ranks, popularity)),
        rounds=1, iterations=1)
    print_report(REGISTRY["fig06_07"](context))

    assert se.average_relative_error < zipf.average_relative_error
    # Head comparison: Zipf's prediction at rank 1 overshoots more.
    head_actual = popularity[0]
    zipf_head = zipf.predict(ranks[:1])[0]
    se_head = se.predict(ranks[:1])[0]
    assert abs(se_head - head_actual) <= abs(zipf_head - head_actual)
