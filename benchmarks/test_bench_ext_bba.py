"""Extension bench: BBA streaming verdicts vs ODR's hard 125 KBps rule.

Section 6.1 proposes replacing ODR's hard-coded decision procedure with
buffer-based adaptation (Huang et al.).  This bench replays the cloud
run's fetch speeds through a BBA-0 player and measures how the two
policies disagree: the hard rule wastes redirections on steady-but-slow
fetches that BBA would play smoothly at a lower rung.
"""

import numpy as np
from conftest import print_report

from repro.core.bba import simulate_playback, streaming_verdict
from repro.paper import IMPEDED_FETCH_THRESHOLD


def test_bench_ext_bba_verdicts(benchmark, warm_context):
    result = warm_context.cloud_result
    rng = np.random.default_rng(99)
    speeds = [record.average_speed
              for record in result.fetch_records
              if not record.rejected][:1500]

    def judge_all():
        verdicts = []
        for speed in speeds:
            # A mildly bursty per-second profile around the flow's mean.
            profile = speed * rng.uniform(0.7, 1.3, size=240)
            verdicts.append((speed >= IMPEDED_FETCH_THRESHOLD,
                             streaming_verdict(profile)))
        return verdicts

    verdicts = benchmark.pedantic(judge_all, rounds=1, iterations=1)

    hard_ok = sum(1 for hard, _bba in verdicts if hard)
    bba_ok = sum(1 for _hard, bba in verdicts if bba)
    rescued = sum(1 for hard, bba in verdicts if bba and not hard)
    print(f"\nstreaming-viable fetches: hard rule {hard_ok}, "
          f"BBA {bba_ok} (+{rescued} rescued) of {len(verdicts)}")

    # BBA never flags a fetch the hard rule passes (it is strictly more
    # permissive on steady flows at these rates)...
    lost = sum(1 for hard, bba in verdicts if hard and not bba)
    assert lost < 0.02 * len(verdicts)
    # ...and rescues a meaningful share of 'impeded' fetches: they are
    # watchable at a lower bitrate rung.
    assert bba_ok > hard_ok
    assert rescued > 0.05 * len(verdicts)
