"""Bench: the hot-path regression guard (``repro.perf``).

Runs the ``repro.perf`` harness in smoke mode (small scales, one
repeat), writes the ``BENCH_perf.json`` artifact, and asserts
conservative speedup floors of the optimised stages over their frozen
pre-optimisation baselines:

* workload generation >= 1.5x (smoke runs measure ~3.4x),
* engine same-instant dispatch >= 1.3x (~2.7x),
* cloud replay >= 1.8x (~3.4x smoke, >= 4x full),
* task state machine vs generators >= 1.2x (~1.7x),
* trace round-trip >= 1.3x (~2.7x),
* columnar read vs JSONL parse >= 1.8x (~4x smoke, ~7x full).

The floors sit well below the measured ratios so noisy shared CI
runners do not flap; a real regression (e.g. un-vectorising a sampler,
re-introducing the per-event lambda, or parsing the columnar file row
by row) drops the ratio to ~1.0 and trips them regardless of runner
speed.

Set ``REPRO_PERF_OUT`` to also keep the report at a stable path (CI
uploads it as an artifact).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.perf import run_benchmarks, write_report
from repro.perf.stages import STAGES

GENERATE_FLOOR = 1.5
ENGINE_FLOOR = 1.3
CLOUD_FLOOR = 1.8
FAST_TASKS_FLOOR = 1.2
TRACE_FLOOR = 1.3
COLUMNAR_FLOOR = 1.8


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    report = run_benchmarks(smoke=True, profile_top=8)
    out = os.environ.get("REPRO_PERF_OUT")
    path = (Path(out) if out
            else tmp_path_factory.mktemp("perf") / "BENCH_perf.json")
    write_report(report, path)
    print()
    print(report.render())
    return report


def test_report_covers_every_stage(report):
    assert [result.name for result in report.stages] == list(STAGES)
    for result in report.stages:
        assert result.optimized_seconds > 0


def test_generate_speedup_floor(report):
    assert report.stage("workload_generate").speedup >= GENERATE_FLOOR


def test_engine_dispatch_speedup_floor(report):
    assert report.stage("engine_dispatch").speedup >= ENGINE_FLOOR


def test_cloud_replay_speedup_floor(report):
    assert report.stage("cloud_replay").speedup >= CLOUD_FLOOR


def test_fast_tasks_speedup_floor(report):
    assert report.stage("cloud_fast_tasks").speedup >= FAST_TASKS_FLOOR


def test_trace_roundtrip_speedup_floor(report):
    assert report.stage("trace_roundtrip").speedup >= TRACE_FLOOR


def test_trace_columnar_speedup_floor(report):
    assert report.stage("trace_columnar").speedup >= COLUMNAR_FLOOR


def test_tripwire_stages_are_timed_without_baseline(report):
    for name in ("ap_replay", "odr_replay"):
        result = report.stage(name)
        assert result.baseline_seconds is None
        assert result.speedup is None
        assert result.note    # the missing baseline is documented


def test_profile_top_is_captured(report):
    for result in report.stages:
        assert result.profile_top, f"no profile lines for {result.name}"
        assert result.profile_top[0].lstrip().startswith("ncalls")
