"""Bench: observability overhead -- instrumented vs NOOP cloud run.

The acceptance bar for the obs subsystem is that the *disabled* path
(the NOOP registry, which is the default everywhere) costs < 5% on a
cloud week, and that the fully instrumented path stays cheap enough to
leave on for debugging runs.  Both variants run the same small workload
(scale 0.001) back to back and report their wall-clock ratio.
"""

from __future__ import annotations

import time

from repro.cloud import CloudConfig, XuanfengCloud
from repro.obs import MetricsRegistry
from repro.workload import WorkloadConfig, WorkloadGenerator

OVERHEAD_SCALE = 0.001


def _run_week(workload, metrics=None):
    config = CloudConfig(scale=OVERHEAD_SCALE)
    if metrics is None:
        cloud = XuanfengCloud(config)
    else:
        cloud = XuanfengCloud(config, metrics=metrics)
    return cloud.run(workload)


def _time(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_bench_noop_overhead(benchmark):
    workload = WorkloadGenerator(
        WorkloadConfig(scale=OVERHEAD_SCALE, seed=20150222)).generate()
    _run_week(workload)  # warm caches / imports outside the timings

    noop_seconds = _time(lambda: _run_week(workload))

    def instrumented():
        return _run_week(workload, metrics=MetricsRegistry())

    instrumented_seconds = _time(instrumented)
    benchmark.pedantic(instrumented, rounds=1, iterations=1)

    ratio = instrumented_seconds / noop_seconds
    print(f"\nnoop:         {noop_seconds:.3f} s")
    print(f"instrumented: {instrumented_seconds:.3f} s "
          f"(x{ratio:.3f})")
    # The live registry may cost real time (it bins every observation);
    # the guard here is that it stays within a small constant factor,
    # and that the default NOOP path is sane at all.
    assert ratio < 2.0

    # The instrumented run must actually have collected the goods.
    metrics = MetricsRegistry()
    result = _run_week(workload, metrics=metrics)
    assert len(result.tasks) == len(workload.requests)
    names = metrics.metric_names()
    assert len(names) >= 8
    for subsystem in ("cloud", "sim", "transfer"):
        assert any(name.startswith(f"repro_{subsystem}_")
                   for name in names), subsystem
