"""Bench: the sharded multi-process pipeline (``repro.scale``).

Runs the generate+replay pipeline at ``--jobs 1`` and ``--jobs 4`` via
:func:`repro.scale.bench.run_benchmark`, writes the ``BENCH_scale.json``
artifact CI uploads, and asserts the two contracts of the subsystem:

* merged stats are bit-identical across jobs values (checked inside
  ``run_benchmark``, which raises on violation);
* with >= 4 real cores, 4 workers give >= 2x speedup over 1.  On
  smaller hosts (this includes 1-CPU CI fallbacks and containers) the
  speedup assertion is skipped -- process parallelism cannot beat the
  spawn overhead without cores to run on.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.exporters import load_bench_json, write_bench_json
from repro.scale.bench import run_benchmark

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.002"))


@pytest.fixture(scope="module")
def record(tmp_path_factory):
    record = run_benchmark(scale=BENCH_SCALE, shards=8,
                           jobs_values=(1, 4))
    out = tmp_path_factory.mktemp("bench") / "BENCH_scale.json"
    write_bench_json(record, out)
    return load_bench_json(out)


def test_bench_record_is_well_formed(record):
    assert record["benchmark"] == "scale.sharded_cloud_stats"
    assert record["cpu_count"] >= 1
    assert len(record["runs"]) == 2
    for run in record["runs"]:
        assert run["wall_seconds"] > 0.0
        assert run["tasks"] > 0
        assert 0.0 < run["cache_hit_ratio"] < 1.0
    # Identical merged stats across jobs values (the invariance that
    # run_benchmark itself enforces -- spot-check the summaries too).
    first, second = record["runs"]
    assert first["tasks"] == second["tasks"]
    assert first["cache_hit_ratio"] == second["cache_hit_ratio"]
    assert first["request_failure_ratio"] == \
        second["request_failure_ratio"]


def test_bench_scale_speedup(record):
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 cores for a meaningful speedup bar")
    four_worker_run = record["runs"][1]
    assert four_worker_run["jobs"] == 4
    assert four_worker_run["speedup"] >= 2.0, \
        json.dumps(record["runs"], indent=2)
