"""Bench: Table 1 -- smart-AP hardware configurations (exact)."""

from conftest import print_report

from repro.experiments import REGISTRY


def test_bench_table1(benchmark, context):
    report = benchmark(lambda: REGISTRY["table1"](context))
    print_report(report)
    assert report.worst_relative_error() == 0.0
    rendered = report.table
    for name in ("HiWiFi", "MiWiFi", "Newifi"):
        assert name in rendered
    assert "MT7620A" in rendered and "Broadcom4709" in rendered
