"""Benchmark fixtures: a shared full-scale experiment context.

Every figure/table bench reuses one memoised context (workload + cloud
run + AP replay + ODR replay), so the heavy simulation cost is paid once
per pytest session; the benchmarked callables are the experiment drivers
themselves, timed end to end where meaningful.

Set ``REPRO_BENCH_SCALE`` to override the workload scale.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import default_context
from repro.experiments.context import DEFAULT_SCALE

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def context():
    return default_context(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def warm_context(context):
    """Context with the expensive artefacts already materialised, so
    benches that time a *driver* do not accidentally time the whole
    simulation pipeline on first touch."""
    context.cloud_result
    context.ap_report
    context.odr_result
    context.cloud_only_result
    context.ap_only_result
    return context


def print_report(report) -> None:
    print()
    print(report.render())
