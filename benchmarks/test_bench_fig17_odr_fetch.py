"""Bench: Figure 17 -- ODR fetching-speed CDF vs plain Xuanfeng."""

from conftest import print_report

from repro.experiments import REGISTRY


def test_bench_fig17(benchmark, warm_context):
    report = benchmark.pedantic(
        lambda: REGISTRY["fig17"](warm_context), rounds=1, iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}

    assert rows["ODR fetch median (KBps)"].relative_error < 0.20
    assert rows["ODR fetch mean (KBps)"].relative_error < 0.20
    # The testbed line caps ODR's max at ~2.37 MBps (paper Fig. 17).
    assert rows["ODR fetch max (MBps)"].relative_error < 0.05

    # The comparative claim: ODR improves the median over Xuanfeng.
    improvement = rows["median improvement over Xuanfeng"].measured_value
    assert improvement > 1.1

    odr = report.data["odr_cdf"]
    xuanfeng = report.data["xuanfeng_cdf"]
    # ODR's low tail is thinner (no ISP barrier, no rejections).  It is
    # not halved in WAN terms because cloud->AP staging for slow-line
    # users still shows its WAN leg here; the *user-experienced*
    # impeded share (Fig. 16's B1) is what collapses to ~1/4.
    assert odr.probability_below(125e3) < \
        0.75 * xuanfeng.probability_below(125e3)
