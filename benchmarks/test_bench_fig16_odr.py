"""Bench: Figure 16 -- the four bottlenecks, conventional vs ODR.

The benchmarked quantity is the ODR replay campaign itself (decide +
execute for the whole sample).
"""

from conftest import print_report

from repro.core import OdrMiddleware, OdrStrategy
from repro.experiments import REGISTRY


def test_bench_odr_replay(benchmark, warm_context):
    evaluator = warm_context.evaluator()
    sample = warm_context.sample
    strategy = OdrStrategy(OdrMiddleware(warm_context.cloud.database))

    result = benchmark.pedantic(
        lambda: evaluator.replay(sample, strategy), rounds=1,
        iterations=1)
    assert len(result.outcomes) == len(sample)


def test_fig16_reproduction(benchmark, warm_context):
    report = benchmark.pedantic(
        lambda: REGISTRY["fig16"](warm_context), rounds=1,
        iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}

    # B1: impeded fetches drop sharply (paper 28% -> 9%).
    baseline_b1 = rows["B1 baseline impeded share (cloud)"].measured_value
    odr_b1 = rows["B1 ODR impeded share"].measured_value
    assert odr_b1 < baseline_b1 / 2
    assert odr_b1 < 0.13

    # B2: cloud bandwidth cut by roughly a third (paper 35%).
    reduction = rows["B2 cloud bandwidth reduction"].measured_value
    assert 0.25 < reduction < 0.45
    projected = rows["B2 projected peak burden (Gbps)"].measured_value
    assert projected < 30.0   # back under the purchased capacity

    # B3: unpopular failures collapse vs the AP baseline (42% -> 13%).
    baseline_b3 = rows["B3 baseline unpopular failure (APs)"] \
        .measured_value
    odr_b3 = rows["B3 ODR unpopular failure"].measured_value
    assert odr_b3 < baseline_b3 / 2

    # B4: write-path throttling is gone.
    assert rows["B4 ODR write-path-limited share"].measured_value == 0.0

    assert report.data["wrong_decisions"] < 0.02
