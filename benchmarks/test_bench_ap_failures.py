"""Bench: section 5.2 smart-AP failure statistics and cause breakdown."""

from conftest import print_report

from repro.experiments import REGISTRY
from repro.transfer.source import CAUSE_INSUFFICIENT_SEEDS


def test_bench_ap_failures(benchmark, warm_context):
    report = benchmark.pedantic(
        lambda: REGISTRY["ap_failures"](warm_context), rounds=1,
        iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}

    # Overall ~16.8%, unpopular ~42%.
    assert rows["overall failure ratio"].relative_error < 0.35
    assert rows["unpopular failure ratio"].relative_error < 0.30

    # Cause mix: seeds dominate (86%), then servers, then bugs.
    causes = report.data["causes"]
    assert causes[CAUSE_INSUFFICIENT_SEEDS] > 0.7
    ordered = sorted(causes.values(), reverse=True)
    assert causes[CAUSE_INSUFFICIENT_SEEDS] == ordered[0]
