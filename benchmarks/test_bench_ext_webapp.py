"""Extension bench: ODR web-service decision throughput.

The paper runs ODR on "a low-end virtual machine ... 1 Mbps of Internet
access bandwidth" costing $20/month; that works because a decision is a
database lookup plus a handful of predicate evaluations -- no file
bytes.  This bench confirms the middleware sustains production-like
request rates in a single Python process.
"""

import json

from repro.core.webapp import OdrWebApp

QUERIES = [
    "/decide?link=magnet://origin/f{i}&popularity=200&bandwidth_mbps=20"
    "&ap=newifi&device=usb-flash&filesystem=ntfs",
    "/decide?link=http://host/f{i}&popularity=3&cached=1"
    "&bandwidth_mbps=0.5&ap=hiwifi",
    "/decide?link=ed2k://origin/f{i}&popularity=500&bandwidth_mbps=10"
    "&ap=miwifi",
    "/decide?link=ftp://host/f{i}&popularity=1&bandwidth_mbps=4",
]


def test_bench_ext_webapp_decisions(benchmark):
    app = OdrWebApp()

    def serve_batch():
        responses = []
        for index in range(200):
            path = QUERIES[index % len(QUERIES)].format(i=index)
            responses.append(app.handle(path))
        return responses

    responses = benchmark(serve_batch)
    assert len(responses) == 200
    payloads = [json.loads(body) for status, _type, body, _cookie
                in responses if status == 200]
    assert len(payloads) == 200
    actions = {payload["action"] for payload in payloads}
    # The workload mix exercises several distinct routes.
    assert {"user_device", "cloud+ap", "smart_ap"} <= actions

    # Throughput: even interpreted Python handles far more decisions
    # per second than the real service's ~1 request/s budget implies.
    decisions_per_second = 200 / benchmark.stats["mean"]
    print(f"\n~{decisions_per_second:,.0f} ODR decisions/second "
          f"(single process, in-memory)")
    assert decisions_per_second > 1000