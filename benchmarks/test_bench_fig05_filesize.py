"""Bench: Figure 5 -- the requested-file-size CDF."""

from conftest import print_report

from repro.experiments import REGISTRY


def test_bench_fig05(benchmark, context):
    context.workload   # materialise outside the timed region
    report = benchmark.pedantic(lambda: REGISTRY["fig05"](context),
                                rounds=1, iterations=1)
    print_report(report)
    rows = {row.quantity: row for row in report.comparisons}
    assert rows["median file size (MB)"].relative_error < 0.10
    assert rows["mean file size (MB)"].relative_error < 0.10
    assert rows["share below 8 MB"].relative_error < 0.10
    assert rows["max file size (GB)"].relative_error < 0.05
