"""Ablation: privileged network paths on vs off.

Xuanfeng's uploading servers are deployed *inside* the four major ISPs
precisely so fetches dodge the ISP barrier (section 2.1).  Replacing the
ISP-aware selector with a load-only selector sends most fetches across
the barrier and the impeded share explodes -- the design choice this
bench quantifies.
"""

from conftest import print_report

from repro.cloud import CloudConfig, XuanfengCloud


def test_bench_ablation_privileged_paths(benchmark, context):
    workload = context.workload

    def run_without_privileged_paths():
        config = CloudConfig(scale=context.scale,
                             privileged_paths=False)
        return XuanfengCloud(config).run(workload)

    blind = benchmark.pedantic(run_without_privileged_paths, rounds=1,
                               iterations=1)
    aware = context.cloud_result

    blind_fetch = blind.fetch_speed_cdf()
    aware_fetch = aware.fetch_speed_cdf()
    print(f"\nimpeded share: ISP-aware {aware.impeded_fetch_share:.3f}, "
          f"ISP-blind {blind.impeded_fetch_share:.3f}")
    print(f"fetch median: aware {aware_fetch.median / 1e3:.0f} KBps, "
          f"blind {blind_fetch.median / 1e3:.0f} KBps")

    assert blind.impeded_fetch_share > 1.5 * aware.impeded_fetch_share
    assert blind_fetch.median < 0.6 * aware_fetch.median
