"""Extension bench: multi-week cache warm-up.

The paper measures one week of a system whose cache carries years of
history.  Driving a persistent cloud across consecutive evolving weeks
shows the mechanism: the hit ratio climbs toward the measured 89% as
the pool accumulates the catalog, and failures fall with it.
"""

from repro.analysis.tables import TextTable
from repro.cloud import CloudConfig, XuanfengCloud
from repro.workload import MultiWeekGenerator, WorkloadConfig, run_weeks
from repro.workload.popularity import PopularityClass

WEEKS = 4
SCALE = 0.004


def test_bench_ext_multiweek_warmup(benchmark):
    generator = MultiWeekGenerator(WorkloadConfig(scale=SCALE, seed=29))
    # Cold start: the warm-up itself provides the "pre-existing cache".
    config = CloudConfig(
        scale=SCALE,
        precached_probability={klass: 0.0
                               for klass in PopularityClass})
    cloud = XuanfengCloud(config)

    trajectory = benchmark.pedantic(
        lambda: run_weeks(cloud, generator, WEEKS), rounds=1,
        iterations=1)

    table = TextTable(["week", "requests", "hit ratio", "failures",
                       "pool files"], ["d", "d", ".3f", ".3f", "d"])
    for entry in trajectory:
        table.add_row(entry.week, entry.requests,
                      entry.cache_hit_ratio,
                      entry.request_failure_ratio, entry.pool_files)
    print("\n" + table.render())

    first, *rest = trajectory
    # Warm weeks beat the cold week on hits and failures...
    assert all(entry.cache_hit_ratio > first.cache_hit_ratio + 0.02
               for entry in rest)
    assert all(entry.request_failure_ratio <=
               first.request_failure_ratio for entry in rest)
    # ...the pool accumulates monotonically...
    pools = [entry.pool_files for entry in trajectory]
    assert pools == sorted(pools)
    # ...and the steady state approaches the paper's 89% hit ratio.
    assert rest[-1].cache_hit_ratio > 0.85
