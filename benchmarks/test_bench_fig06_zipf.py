"""Bench: Figure 6 -- Zipf fit of the rank-popularity curve."""

import numpy as np
from conftest import print_report

from repro.analysis.fitting import fit_zipf
from repro.experiments import REGISTRY
from repro.workload.popularity import rank_popularity_curve


def test_bench_fig06_zipf_fit(benchmark, context):
    ranks, popularity = rank_popularity_curve(
        context.workload.catalog.demands())

    fit = benchmark(fit_zipf, ranks, popularity)
    # The synthetic curve is Zipf-like: slope near the paper's 1.034,
    # with a non-trivial but bounded fit error.
    assert 0.7 < fit.a < 1.4
    assert fit.average_relative_error < 0.5


def test_fig06_07_reproduction(benchmark, context):
    report = benchmark.pedantic(
        lambda: REGISTRY["fig06_07"](context), rounds=1, iterations=1)
    print_report(report)
    # The headline comparative claim: SE fits better than Zipf.
    assert report.data["se_beats_zipf"]
