"""Ablation: collaborative caching on vs off.

The paper's counterfactual (section 4.1): without the storage pool the
failure ratio roughly doubles (8.7% vs 16.4%), and every request pays a
real pre-download.  Disabling the cache in the simulator reproduces both
effects mechanistically.
"""

from conftest import BENCH_SCALE

from repro.cloud import CloudConfig, XuanfengCloud

ABLATION_SCALE = min(BENCH_SCALE, 0.01)


def test_bench_ablation_collaborative_cache(benchmark, context):
    workload = context.workload

    def run_without_cache():
        config = CloudConfig(scale=context.scale,
                             collaborative_cache=False)
        return XuanfengCloud(config).run(workload)

    no_cache = benchmark.pedantic(run_without_cache, rounds=1,
                                  iterations=1)
    with_cache = context.cloud_result

    print(f"\nfailure ratio: with cache "
          f"{with_cache.request_failure_ratio:.3f}, without "
          f"{no_cache.request_failure_ratio:.3f}")
    print(f"hit ratio: with {with_cache.cache_hit_ratio:.3f}, "
          f"without {no_cache.cache_hit_ratio:.3f}")
    print(f"pre-download traffic: with "
          f"{with_cache.fleet.traffic_bytes / 1e12:.2f} TB, without "
          f"{no_cache.fleet.traffic_bytes / 1e12:.2f} TB")

    # No cache -> no hits, far more failures, far more traffic.
    assert no_cache.cache_hit_ratio == 0.0
    assert no_cache.request_failure_ratio > \
        1.8 * with_cache.request_failure_ratio
    assert no_cache.fleet.traffic_bytes > \
        3.0 * with_cache.fleet.traffic_bytes
    # Every request became an attempt.
    assert no_cache.fleet.attempts >= len(workload.requests)
