"""Tests for the BBA-0 rate map and streaming-verdict refinement."""

import numpy as np
import pytest

from repro.core.bba import (
    BbaConfig,
    DEFAULT_LADDER,
    simulate_playback,
    streaming_verdict,
)
from repro.sim.clock import kbps


class TestRateMap:
    def test_reservoir_pins_minimum_rate(self):
        config = BbaConfig()
        assert config.rate_for_buffer(0.0) == DEFAULT_LADDER[0]
        assert config.rate_for_buffer(config.reservoir) == \
            DEFAULT_LADDER[0]

    def test_cushion_pins_maximum_rate(self):
        config = BbaConfig()
        full = config.reservoir + config.cushion
        assert config.rate_for_buffer(full) == DEFAULT_LADDER[-1]
        assert config.rate_for_buffer(full + 50) == DEFAULT_LADDER[-1]

    def test_map_is_monotone_and_on_the_ladder(self):
        config = BbaConfig()
        previous = 0.0
        for buffer_level in np.linspace(0, 80, 200):
            rate = config.rate_for_buffer(buffer_level)
            assert rate in config.ladder
            assert rate >= previous
            previous = rate

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BbaConfig(ladder=())
        with pytest.raises(ValueError):
            BbaConfig(ladder=(2.0, 1.0))
        with pytest.raises(ValueError):
            BbaConfig(reservoir=0.0)


class TestPlayback:
    def test_fast_link_plays_at_top_rate_without_stalls(self):
        result = simulate_playback([kbps(400.0)] * 600)
        assert result.rebuffer_seconds == 0.0
        assert result.mean_bitrate > 0.8 * DEFAULT_LADDER[-1]
        assert result.played_seconds > 500

    def test_steady_slow_link_degrades_instead_of_stalling(self):
        # 100 KBps is 'impeded' by the hard 125 KBps rule, yet BBA plays
        # it smoothly at a lower rung.
        result = simulate_playback([kbps(100.0)] * 900)
        assert result.rebuffer_ratio < 0.02
        assert result.mean_bitrate < DEFAULT_LADDER[-1]
        assert result.mean_bitrate >= DEFAULT_LADDER[0]

    def test_starving_link_rebuffers(self):
        result = simulate_playback([kbps(10.0)] * 900)
        assert result.rebuffer_ratio > 0.3 or result.played_seconds == 0

    def test_bursty_profile_switches_bitrates(self):
        profile = ([kbps(400.0)] * 120 + [kbps(40.0)] * 120) * 3
        result = simulate_playback(profile)
        assert result.bitrate_switches >= 2

    def test_startup_counts_before_playback(self):
        result = simulate_playback([kbps(50.0)] * 300)
        assert result.startup_delay > 0.0

    def test_step_validation(self):
        with pytest.raises(ValueError):
            simulate_playback([1.0], step=0.0)


class TestStreamingVerdict:
    def test_steady_sub_threshold_is_viable_under_bba(self):
        assert streaming_verdict([kbps(100.0)] * 900)

    def test_dead_link_is_not_viable(self):
        assert not streaming_verdict([0.001] * 300)

    def test_fast_link_is_viable(self):
        assert streaming_verdict([kbps(500.0)] * 600)

    def test_bba_refines_the_hard_threshold(self):
        """The paper's point: a buffer-based policy reverses some of
        ODR's hard-coded verdicts -- a steady 100 KBps flow is viable,
        while an intermittent flow with a *higher* average can fail."""
        steady_slow = [kbps(100.0)] * 900            # avg 100 KBps
        bursty = ([kbps(800.0)] * 45 + [0.0] * 255) * 3   # avg 120 KBps
        hard_rule = lambda profile: np.mean(profile) >= kbps(125.0)
        assert not hard_rule(steady_slow) and \
            streaming_verdict(steady_slow)
        assert not streaming_verdict(bursty, rebuffer_tolerance=0.02)
