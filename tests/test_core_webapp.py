"""Tests for the ODR web service (in-process and over real HTTP)."""

import json
import signal
import threading
import time
import urllib.request

import pytest

from repro.core.webapp import OdrWebApp, make_server, run_server


class TestInProcessRouting:
    @pytest.fixture()
    def app(self):
        return OdrWebApp()

    def test_front_page(self, app):
        status, content_type, body, _cookie, _headers = app.handle("/")
        assert status == 200
        assert content_type == "text/html"
        assert "Offline Downloading Redirector" in body

    def test_healthz(self, app):
        status, _type, body, _cookie, _headers = app.handle("/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_unknown_path_is_404(self, app):
        status, _type, body, _cookie, _headers = app.handle("/nope")
        assert status == 404
        assert "error" in json.loads(body)

    def test_decide_requires_link(self, app):
        status, _type, body, _cookie, _headers = app.handle("/decide")
        assert status == 400
        assert "link" in json.loads(body)["error"]

    def test_decide_hot_p2p_with_bad_storage(self, app):
        status, _type, body, _cookie, _headers = app.handle(
            "/decide?link=magnet://origin/xyz&popularity=200"
            "&bandwidth_mbps=20&ap=newifi&device=usb-flash"
            "&filesystem=ntfs")
        assert status == 200
        payload = json.loads(body)
        assert payload["action"] == "user_device"
        assert payload["data_source"] == "original"
        assert 4 in payload["bottlenecks_addressed"]

    def test_decide_slow_line_cached_file(self, app):
        status, _type, body, _cookie, _headers = app.handle(
            "/decide?link=http://host/f1&popularity=3&cached=1"
            "&bandwidth_mbps=0.5&ap=hiwifi")
        payload = json.loads(body)
        assert status == 200
        assert payload["action"] == "cloud+ap"

    def test_bad_parameter_is_a_400_not_a_crash(self, app):
        status, _type, body, _cookie, _headers = app.handle(
            "/decide?link=gopher://host/f")
        assert status == 400

    def test_cookie_is_issued_and_honoured(self, app):
        _s, _t, _b, set_cookie, _h = app.handle(
            "/decide?link=http://host/f&bandwidth_mbps=8")
        assert set_cookie and set_cookie.startswith("odr_user=")
        cookie_value = set_cookie.split(";")[0]
        # A repeat visit with the cookie gets no new cookie...
        _s, _t, _b, second, _h = app.handle(
            "/decide?link=http://host/f", cookie_header=cookie_value)
        assert second is None
        # ...and the stored bandwidth is recalled (cookie jar).
        user_id = cookie_value.split("=")[1]
        stored = app.service.cookies.recall(user_id)
        assert stored is not None
        assert stored.access_bandwidth == pytest.approx(1e6)


class TestDeadlinePropagation:
    """X-Deadline-Ms budgets reach the routing policies as
    ``UserContext.deadline_seconds`` -- and nowhere else."""

    @pytest.fixture()
    def app(self):
        return OdrWebApp()

    def test_deadline_becomes_remaining_budget(self, app):
        context = app._build_context(
            lambda key, default=None: default, "u1",
            ip_address="1.2.3.4",
            deadline=time.monotonic() + 2.0)
        assert context.deadline_seconds is not None
        assert 1.5 < context.deadline_seconds <= 2.0

    def test_no_deadline_leaves_the_field_unset(self, app):
        context = app._build_context(
            lambda key, default=None: default, "u1",
            ip_address="1.2.3.4")
        assert context.deadline_seconds is None

    def test_expired_deadline_clamps_to_zero(self, app):
        context = app._build_context(
            lambda key, default=None: default, "u1",
            ip_address="1.2.3.4",
            deadline=time.monotonic() - 5.0)
        assert context.deadline_seconds == 0.0

    def test_handle_with_deadline_matches_replay_bits(self, app):
        """A deadline must not leak into the decision of the default
        policy (replay paths never stamp one, and the golden digests
        depend on that)."""
        query = "/decide?link=http://host/f&bandwidth_mbps=8"
        _s, _t, body, set_cookie, _h = app.handle(
            query, deadline=time.monotonic() + 30.0)
        cookie_value = set_cookie.split(";")[0]
        _s, _t, replay_body, _c, _h = app.handle(
            query, cookie_header=cookie_value)
        strip = lambda b: {k: v for k, v in json.loads(b).items()
                           if k != "user_id"}
        assert strip(body) == strip(replay_body)

    def test_deadline_never_persists_into_the_cookie_jar(self, app):
        _s, _t, _b, set_cookie, _h = app.handle(
            "/decide?link=http://host/f&bandwidth_mbps=8",
            deadline=time.monotonic() + 30.0)
        user_id = set_cookie.split(";")[0].split("=")[1]
        stored = app.service.cookies.recall(user_id)
        assert stored is not None
        assert stored.deadline_seconds is None


class TestRealHttpServer:
    @pytest.fixture(scope="class")
    def server_url(self):
        server = make_server(port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()

    def test_end_to_end_decision_over_http(self, server_url):
        with urllib.request.urlopen(
                f"{server_url}/decide?link=ed2k://origin/abc"
                f"&popularity=500&bandwidth_mbps=10&ap=miwifi") \
                as response:
            assert response.status == 200
            payload = json.loads(response.read())
        assert payload["action"] == "smart_ap"
        assert payload["protocol"] == "emule"

    def test_front_page_over_http(self, server_url):
        with urllib.request.urlopen(server_url + "/") as response:
            assert response.status == 200
            assert b"Ask ODR" in response.read()

    def test_health_over_http(self, server_url):
        with urllib.request.urlopen(server_url + "/healthz") as resp:
            assert json.loads(resp.read())["status"] == "ok"


class TestServerLifecycle:
    def test_server_has_explicit_lifecycle_flags(self):
        from repro.core.webapp import OdrHTTPServer
        server = make_server(port=0)
        try:
            assert isinstance(server, OdrHTTPServer)
            # Handler threads must not block interpreter exit, and a
            # restart must be able to rebind a TIME_WAIT port.
            assert server.daemon_threads is True
            assert server.allow_reuse_address is True
        finally:
            server.server_close()

    def test_shutdown_joins_promptly_after_serving(self):
        server = make_server(port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        with urllib.request.urlopen(
                f"http://{host}:{port}/healthz") as response:
            assert response.status == 200
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_port_can_be_rebound_after_close(self):
        first = make_server(port=0)
        port = first.server_address[1]
        first.server_close()
        second = make_server(port=port)
        try:
            assert second.server_address[1] == port
        finally:
            second.server_close()


class TestGracefulShutdown:
    """SIGTERM/SIGINT stop accepting, drain in-flight responses, then
    close -- instead of daemon threads being cut off mid-write."""

    @pytest.mark.parametrize("signum",
                             [signal.SIGINT, signal.SIGTERM])
    def test_signal_stops_idle_server_cleanly(self, signum):
        server = make_server(port=0)
        ready = threading.Event()

        def trigger():
            ready.wait(5.0)
            signal.raise_signal(signum)

        threading.Thread(target=trigger, daemon=True).start()
        code = run_server(server, grace=2.0, ready=ready, quiet=True)
        assert code == 0
        assert server.inflight_requests == 0

    def test_sigterm_drains_inflight_request_before_closing(self):
        server = make_server(port=0)
        app = server.RequestHandlerClass.app
        original = app.handle
        started = threading.Event()
        release = threading.Event()

        def slow_handle(path, cookie_header=""):
            if path.startswith("/slow"):
                started.set()
                release.wait(5.0)
                return 200, "text/plain", "drained", None, {}
            return original(path, cookie_header)

        app.handle = slow_handle
        host, port = server.server_address[:2]
        ready = threading.Event()
        received = {}

        def client():
            ready.wait(5.0)
            with urllib.request.urlopen(
                    f"http://{host}:{port}/slow", timeout=10.0) as resp:
                received["body"] = resp.read()

        def trigger():
            started.wait(5.0)
            signal.raise_signal(signal.SIGTERM)
            time.sleep(0.3)   # let shutdown start draining first
            release.set()

        client_thread = threading.Thread(target=client, daemon=True)
        client_thread.start()
        threading.Thread(target=trigger, daemon=True).start()
        code = run_server(server, grace=10.0, ready=ready, quiet=True)
        client_thread.join(5.0)
        assert code == 0
        assert server.inflight_requests == 0
        assert received["body"] == b"drained"

    def test_drain_timeout_reports_unclean_exit(self):
        server = make_server(port=0)
        app = server.RequestHandlerClass.app
        started = threading.Event()
        release = threading.Event()

        def stuck_handle(path, cookie_header=""):
            started.set()
            release.wait(10.0)
            return 200, "text/plain", "late", None, {}

        app.handle = stuck_handle
        host, port = server.server_address[:2]
        ready = threading.Event()

        def client():
            ready.wait(5.0)
            try:
                urllib.request.urlopen(
                    f"http://{host}:{port}/healthz", timeout=15.0).read()
            except OSError:
                pass

        def trigger():
            started.wait(5.0)
            signal.raise_signal(signal.SIGTERM)

        threading.Thread(target=client, daemon=True).start()
        threading.Thread(target=trigger, daemon=True).start()
        try:
            code = run_server(server, grace=0.3, ready=ready,
                              quiet=True)
            assert code == 1
        finally:
            release.set()   # unstick the daemon handler thread


class TestBackendResilience:
    """Regression: backend faults degrade to structured errors, and the
    breaker sheds load with 503 + Retry-After instead of crashing."""

    @staticmethod
    def _faulty_app(**overrides):
        from repro.faults.policies import ResiliencePolicies
        clock = {"now": 0.0}
        defaults = dict(breaker_window=4, breaker_threshold=0.5,
                        breaker_min_samples=2, breaker_cooldown=30.0)
        defaults.update(overrides)
        app = OdrWebApp(policies=ResiliencePolicies(**defaults),
                        clock=lambda: clock["now"])
        return app, clock

    def test_backend_exception_is_a_structured_500(self):
        app, _clock = self._faulty_app()

        def boom(context, link):
            raise RuntimeError("database on fire")

        app.service.handle_request = boom
        status, ctype, body, _cookie, headers = app.handle(
            "/decide?link=http://host/f")
        assert status == 500
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["error"] == "internal error"
        assert "database on fire" in payload["detail"]
        assert headers == {}

    def test_breaker_opens_to_503_with_retry_after(self):
        app, clock = self._faulty_app()

        def boom(context, link):
            raise RuntimeError("boom")

        app.service.handle_request = boom
        for _ in range(2):
            status, *_rest = app.handle("/decide?link=http://host/f")
            assert status == 500
        status, _ctype, body, _cookie, headers = app.handle(
            "/decide?link=http://host/f")
        assert status == 503
        payload = json.loads(body)
        assert payload["error"] == "decision backend unavailable"
        assert int(headers["Retry-After"]) >= 1
        assert payload["retry_after_seconds"] == \
            int(headers["Retry-After"])

    def test_breaker_recloses_after_cooldown_and_recovery(self):
        app, clock = self._faulty_app()
        healthy = app.service.handle_request

        def boom(context, link):
            raise RuntimeError("boom")

        app.service.handle_request = boom
        for _ in range(2):
            app.handle("/decide?link=http://host/f")
        assert app.handle("/decide?link=http://host/f")[0] == 503
        # Backend recovers; after the cooldown the half-open probe goes
        # through and the circuit closes again.
        app.service.handle_request = healthy
        clock["now"] = 31.0
        assert app.handle(
            "/decide?link=http://host/f&bandwidth_mbps=8")[0] == 200
        assert app.handle(
            "/decide?link=http://host/f&bandwidth_mbps=8")[0] == 200

    def test_client_errors_do_not_trip_the_breaker(self):
        app, _clock = self._faulty_app()
        for _ in range(6):
            status, *_rest = app.handle("/decide?link=gopher://host/f")
            assert status == 400
        status, *_rest = app.handle(
            "/decide?link=http://host/f&bandwidth_mbps=8")
        assert status == 200

    def test_unhandled_backend_error_over_real_http(self):
        """The request thread must answer (structured 500), not die."""
        from repro.faults.policies import ResiliencePolicies
        server = make_server(port=0, policies=ResiliencePolicies())
        app = server.RequestHandlerClass.app

        def boom(context, link):
            raise RuntimeError("backend exploded")

        app.service.handle_request = boom
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{host}:{port}/decide?link=http://host/f")
            assert excinfo.value.code == 500
            payload = json.loads(excinfo.value.read())
            assert "backend exploded" in payload["detail"]
        finally:
            server.shutdown()
            server.server_close()
