"""Tests for protocol definitions and traffic-overhead models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfer.protocols import (
    OverheadRange,
    Protocol,
    ProtocolModel,
    default_protocol_model,
)


class TestProtocol:
    def test_p2p_classification(self):
        assert Protocol.BITTORRENT.is_p2p
        assert Protocol.EMULE.is_p2p
        assert not Protocol.HTTP.is_p2p
        assert not Protocol.FTP.is_p2p

    def test_values_roundtrip(self):
        for protocol in Protocol:
            assert Protocol(protocol.value) is protocol


class TestOverheadRange:
    def test_sample_within_range(self):
        bounds = OverheadRange(1.5, 2.5)
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert 1.5 <= bounds.sample(rng) <= 2.5

    def test_rejects_sub_unity_overhead(self):
        with pytest.raises(ValueError):
            OverheadRange(0.9, 1.1)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            OverheadRange(2.0, 1.5)


class TestProtocolModel:
    def test_p2p_overhead_is_tit_for_tat_heavy(self):
        model = default_protocol_model()
        rng = np.random.default_rng(1)
        samples = [model.sample_traffic(Protocol.BITTORRENT, 100.0, rng)
                   for _ in range(500)]
        # Average around 2x the file size (paper: 196% aggregate).
        assert 1.9 * 100 < np.mean(samples) < 2.1 * 100
        assert all(150.0 <= s <= 250.0 for s in samples)

    def test_http_overhead_is_header_sized(self):
        model = default_protocol_model()
        rng = np.random.default_rng(2)
        samples = [model.sample_traffic(Protocol.HTTP, 100.0, rng)
                   for _ in range(500)]
        assert all(107.0 <= s <= 110.0 for s in samples)

    def test_partial_download_pays_partial_overhead(self):
        model = default_protocol_model()
        rng = np.random.default_rng(3)
        traffic = model.sample_traffic(Protocol.FTP, 1000.0, rng,
                                       completed_fraction=0.5)
        assert 0.5 * 1000 * 1.07 <= traffic <= 0.5 * 1000 * 1.10

    def test_zero_size_costs_nothing(self):
        model = default_protocol_model()
        rng = np.random.default_rng(4)
        assert model.sample_traffic(Protocol.HTTP, 0.0, rng) == 0.0

    def test_invalid_inputs_rejected(self):
        model = default_protocol_model()
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            model.sample_traffic(Protocol.HTTP, -1.0, rng)
        with pytest.raises(ValueError):
            model.sample_traffic(Protocol.HTTP, 1.0, rng,
                                 completed_fraction=1.5)

    def test_overhead_range_lookup(self):
        model = default_protocol_model()
        assert model.overhead_range(Protocol.EMULE) is model.p2p
        assert model.overhead_range(Protocol.FTP) is model.client_server

    @given(size=st.floats(min_value=0.0, max_value=1e12),
           fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_traffic_is_bounded_by_overhead_envelope(self, size, fraction):
        model = default_protocol_model()
        rng = np.random.default_rng(6)
        traffic = model.sample_traffic(Protocol.BITTORRENT, size, rng,
                                       completed_fraction=fraction)
        assert traffic <= size * fraction * 2.5 + 1e-6
        assert traffic >= size * fraction * 1.5 - 1e-6
