"""Tests for smart-AP models, OpenWrt stack, and the device itself."""

import numpy as np
import pytest

from repro.ap import (
    ApBenchmarkRig,
    BENCHMARKED_APS,
    DownloadClient,
    HIWIFI_1S,
    MIWIFI,
    NEWIFI,
    OpenWrtSystem,
    SmartAP,
)
from repro.ap.models import StorageInterface
from repro.sim.clock import kbps, mbps
from repro.storage import Filesystem, SATA_HDD_1TB, SD_CARD_8GB, \
    USB_FLASH_8GB
from repro.transfer.protocols import Protocol
from repro.transfer.source import CAUSE_SYSTEM_BUG
from repro.workload.catalog import FileCatalog
from repro.workload.filetypes import FileType
from repro.workload.records import CatalogFile


def make_file(file_id="f", size=5e7, demand=2000,
              protocol=Protocol.BITTORRENT) -> CatalogFile:
    return CatalogFile(file_id=file_id, size=size,
                       file_type=FileType.VIDEO, protocol=protocol,
                       weekly_demand=demand,
                       source_url=f"{protocol.value}://origin/{file_id}")


class TestHardwarePresets:
    def test_table1_facts(self):
        assert HIWIFI_1S.cpu_model == "MT7620A"
        assert HIWIFI_1S.cpu_mhz == 580.0
        assert HIWIFI_1S.ram_mb == 128
        assert StorageInterface.SD in HIWIFI_1S.storage_interfaces

        assert MIWIFI.cpu_mhz == 1000.0
        assert MIWIFI.ram_mb == 256
        assert StorageInterface.SATA in MIWIFI.storage_interfaces
        assert MIWIFI.default_device is SATA_HDD_1TB
        assert MIWIFI.default_filesystem is Filesystem.EXT4

        assert NEWIFI.cpu_mhz == 580.0
        assert NEWIFI.default_device is USB_FLASH_8GB
        assert NEWIFI.default_filesystem is Filesystem.NTFS

    def test_benchmarked_trio_order(self):
        assert BENCHMARKED_APS == (HIWIFI_1S, MIWIFI, NEWIFI)

    def test_price_gap(self):
        assert MIWIFI.price_usd > 4 * HIWIFI_1S.price_usd

    def test_lan_fetch_exceeds_cloud_max(self):
        # "Even the lowest WiFi fetching speed lies in 8-12 MBps, higher
        # than the maximum fetching speed (6.1 MBps) of Xuanfeng users."
        for hardware in BENCHMARKED_APS:
            assert hardware.lan_fetch_rate_low >= 8e6 > 6.25e6


class TestOpenWrt:
    def test_client_selection_by_protocol(self):
        system = OpenWrtSystem()
        assert system.client_for(Protocol.HTTP).package == "wget"
        assert system.client_for(Protocol.FTP).package == "wget"
        assert system.client_for(Protocol.BITTORRENT).package == "aria2"
        assert system.client_for(Protocol.EMULE).package == "aria2"

    def test_missing_client_raises(self):
        system = OpenWrtSystem(clients=(
            DownloadClient("wget", (Protocol.HTTP,)),))
        with pytest.raises(LookupError):
            system.client_for(Protocol.BITTORRENT)

    def test_bug_rate_calibration(self):
        system = OpenWrtSystem()
        rng = np.random.default_rng(0)
        bugs = sum(system.draw_bug_failure(rng) for _ in range(20000))
        assert bugs / 20000 == pytest.approx(0.006, abs=0.002)

    def test_bug_rate_validation(self):
        with pytest.raises(ValueError):
            OpenWrtSystem(bug_failure_rate=1.0)

    def test_installed_packages_include_diagnostics(self):
        packages = OpenWrtSystem().installed_packages()
        for package in ("wget", "aria2", "tcpdump", "iostat"):
            assert package in packages


class TestSmartAP:
    def test_defaults_follow_hardware(self):
        ap = SmartAP(NEWIFI)
        assert ap.device is USB_FLASH_8GB
        assert ap.filesystem is Filesystem.NTFS
        assert ap.write_path.max_throughput < 1e6

    def test_invalid_device_fs_combination(self):
        with pytest.raises(ValueError):
            SmartAP(HIWIFI_1S, device=SD_CARD_8GB,
                    filesystem=Filesystem.NTFS)

    def test_write_path_caps_pre_download(self):
        ap = SmartAP(NEWIFI)   # NTFS flash: ~0.93 MBps ceiling
        rng = np.random.default_rng(1)
        for _ in range(30):
            outcome, iowait = ap.pre_download(make_file(), rng)
            assert outcome.average_rate <= ap.write_path.max_throughput \
                + 1e-6
            assert 0.0 <= iowait <= 1.0

    def test_access_bandwidth_throttle(self):
        ap = SmartAP(MIWIFI)
        rng = np.random.default_rng(2)
        outcome, _ = ap.pre_download(make_file(), rng,
                                     access_bandwidth=kbps(64.0))
        assert outcome.average_rate <= kbps(64.0) + 1e-6

    def test_bug_failures_carry_the_cause(self):
        ap = SmartAP(MIWIFI, system=OpenWrtSystem(bug_failure_rate=0.999))
        rng = np.random.default_rng(3)
        outcome, iowait = ap.pre_download(make_file(), rng)
        assert not outcome.success
        assert outcome.failure_cause == CAUSE_SYSTEM_BUG
        assert iowait == 0.0

    def test_storage_accounting(self):
        ap = SmartAP(NEWIFI)
        ap.store(5e9)
        assert ap.free_bytes == pytest.approx(3e9)
        ap.remove(5e9)
        assert ap.free_bytes == pytest.approx(8e9)
        with pytest.raises(ValueError):
            ap.store(9e9)

    def test_lan_fetch_rates(self):
        ap = SmartAP(MIWIFI)
        rng = np.random.default_rng(4)
        wifi = ap.lan_fetch_rate(rng)
        assert 8e6 <= wifi <= 12e6
        assert ap.lan_fetch_rate(rng, wired=True) == \
            SATA_HDD_1TB.max_read_rate

    def test_sources_cached_per_file(self):
        ap = SmartAP(MIWIFI)
        record = make_file()
        assert ap.source_for(record) is ap.source_for(record)

    def test_concurrent_lan_fetch_shares_fairly(self):
        ap = SmartAP(MIWIFI)
        rng = np.random.default_rng(5)
        rates = ap.concurrent_lan_fetch_rates([20e6, 20e6, 20e6], rng)
        # Three greedy fetchers split the WiFi airtime evenly...
        assert rates[0] == pytest.approx(rates[1]) == \
            pytest.approx(rates[2])
        assert sum(rates) <= 12e6 + 1e-6
        # ...and a single fetcher is never split.
        solo = ap.concurrent_lan_fetch_rates([20e6], rng)
        assert solo[0] > rates[0]

    def test_concurrent_lan_fetch_small_demand_kept_whole(self):
        ap = SmartAP(MIWIFI)
        rng = np.random.default_rng(6)
        rates = ap.concurrent_lan_fetch_rates([1e5, 20e6], rng)
        assert rates[0] == pytest.approx(1e5)
        assert rates[1] > 5e6

    def test_concurrent_lan_fetch_empty(self):
        ap = SmartAP(MIWIFI)
        assert ap.concurrent_lan_fetch_rates(
            [], np.random.default_rng(7)) == []

    def test_max_pre_download_rate(self):
        ap = SmartAP(NEWIFI)
        assert ap.max_pre_download_rate() == \
            ap.write_path.max_throughput
        assert ap.max_pre_download_rate(network_rate=1e4) == 1e4


class TestBenchmarkRig:
    @pytest.fixture(scope="class")
    def small_catalog(self):
        catalog = FileCatalog()
        catalog.generate(300, np.random.default_rng(5))
        return catalog

    def make_requests(self, catalog, count=60):
        from repro.workload.records import RequestRecord
        records = list(catalog)[:count]
        return [RequestRecord(
            task_id=f"t{i}", user_id=f"u{i}", ip_address="1.1.1.1",
            access_bandwidth=mbps(8.0), request_time=0.0,
            file_id=record.file_id, file_type=record.file_type,
            file_size=record.size, source_url=record.source_url,
            protocol=record.protocol) for i, record in enumerate(records)]

    def test_round_robin_split(self, small_catalog):
        rig = ApBenchmarkRig(small_catalog)
        report = rig.replay(self.make_requests(small_catalog, 60))
        assert len(report.results) == 60
        for name in report.ap_names():
            assert len(report.for_ap(name).results) == 20

    def test_sequential_clocks(self, small_catalog):
        rig = ApBenchmarkRig(small_catalog)
        report = rig.replay(self.make_requests(small_catalog, 30))
        for name in report.ap_names():
            rows = report.for_ap(name).results
            for earlier, later in zip(rows, rows[1:]):
                assert later.record.start_time == \
                    pytest.approx(earlier.record.finish_time)

    def test_empty_replay_rejected(self, small_catalog):
        rig = ApBenchmarkRig(small_catalog)
        with pytest.raises(ValueError):
            rig.replay([])

    def test_top_popular_replay_is_unthrottled(self, small_catalog):
        rig = ApBenchmarkRig(small_catalog)
        requests = self.make_requests(small_catalog, 60)
        ap = SmartAP(NEWIFI, device=USB_FLASH_8GB,
                     filesystem=Filesystem.NTFS)
        report = rig.replay_top_popular(requests, ap, top=10, repeats=3)
        assert len(report.results) == 30
        # Nothing can exceed the NTFS-flash ceiling.
        assert report.max_speed() <= ap.write_path.max_throughput + 1e-6

    def test_report_requires_results(self):
        from repro.ap.benchrig import ApBenchmarkReport
        with pytest.raises(ValueError):
            ApBenchmarkReport([])


class TestApReportStatistics:
    """Bands on the shared session-scope AP replay (section 5.2)."""

    def test_overall_failure_band(self, ap_report):
        assert 0.10 <= ap_report.failure_ratio <= 0.26

    def test_unpopular_failure_band(self, ap_report):
        assert 0.30 <= ap_report.unpopular_failure_ratio <= 0.55

    def test_seeds_dominate_failure_causes(self, ap_report):
        causes = ap_report.failure_cause_breakdown()
        assert causes.get("insufficient_seeds", 0.0) > 0.7

    def test_speed_distribution_band(self, ap_report):
        cdf = ap_report.speed_cdf()
        assert 15e3 <= cdf.median <= 55e3     # paper: 27 KBps
        assert 35e3 <= cdf.mean <= 110e3      # paper: 64 KBps

    def test_all_three_aps_processed_work(self, ap_report):
        assert len(ap_report.ap_names()) == 3
