"""Tests for the bounded pre-downloader fleet (VM queueing)."""

import pytest

from repro.cloud import CloudConfig, XuanfengCloud
from repro.workload import WorkloadConfig, WorkloadGenerator
from repro.workload.popularity import PopularityClass

SMALL = WorkloadConfig(scale=0.0015, seed=23)
COLD = {klass: 0.0 for klass in PopularityClass}


@pytest.fixture(scope="module")
def small_workload():
    return WorkloadGenerator(SMALL).generate()


class TestBoundedFleet:
    def test_unbounded_fleet_has_no_vm_queue(self, small_workload):
        cloud = XuanfengCloud(CloudConfig(scale=SMALL.scale))
        cloud.run(small_workload)
        assert cloud._vm_slots is None

    def test_tiny_fleet_queues_and_lengthens_delays(self,
                                                    small_workload):
        roomy = XuanfengCloud(CloudConfig(
            scale=SMALL.scale, precached_probability=COLD))
        roomy_result = roomy.run(small_workload)

        starved = XuanfengCloud(CloudConfig(
            scale=SMALL.scale, precached_probability=COLD,
            predownloader_count=2))
        starved_result = starved.run(small_workload)

        # The starved fleet really queued work...
        assert starved._vm_slots is not None
        assert starved._vm_slots.peak_queue_length > 0
        assert starved._vm_slots.mean_wait_time > 0.0
        # ...which shows up as longer pre-download delays.
        assert starved_result.attempt_delay_cdf().mean > \
            roomy_result.attempt_delay_cdf().mean

    def test_fleet_statistics_count_every_attempt(self, small_workload):
        cloud = XuanfengCloud(CloudConfig(
            scale=SMALL.scale, precached_probability=COLD,
            predownloader_count=4))
        cloud.run(small_workload)
        # One VM slot per real pre-download session (coalesced joiners
        # share the owner's session and take no slot).
        assert cloud._vm_slots.total_acquired == cloud.fleet.attempts

    def test_outcomes_are_equivalent_when_fleet_is_large(
            self, small_workload):
        # A fleet far bigger than the concurrency never queues, so the
        # success statistics match the unbounded run.
        bounded = XuanfengCloud(CloudConfig(
            scale=SMALL.scale, predownloader_count=100000))
        result = bounded.run(small_workload)
        assert bounded._vm_slots.mean_wait_time == 0.0
        assert 0.0 <= result.request_failure_ratio <= 0.2
