"""Tests for repro.recovery: durable run dirs, crash recovery, resume.

The expensive assertions here are the subsystem's contract: a killed or
hung worker costs a bounded requeue, an interrupted durable run resumes,
and the resumed merge is **bit-identical** to a run that was never
interrupted.  Worker functions live at module level so spawn-context
pools can pickle them (the repo-wide executor invariant).
"""

import json
import pickle

import pytest

from repro.obs import MetricsRegistry
from repro.recovery import (
    CorruptCheckpoint,
    RecoveryConfig,
    RunDir,
    RunDirError,
    RunInterrupted,
    ShardLostError,
    atomic_write_bytes,
    atomic_write_text,
    durable_map,
    sha256_bytes,
    sha256_file,
    worker_identity,
)
from repro.recovery.crashhook import ENV_VAR, maybe_crash, parse_hooks
from repro.scale import ShardPlan, sharded_cloud_stats
from repro.scale.executor import run_sharded, shard_key

SCALE = 0.0008
SEED = 20150222


def _double(value):
    return value * 2


def _boom(value):
    raise RuntimeError("deterministic worker bug")


def _keys(count):
    return [f"item-{index}" for index in range(count)]


class TestAtomicWrites:
    def test_replaces_content_and_leaves_no_litter(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_text(target, "first\n")
        atomic_write_text(target, "second\n")
        assert target.read_text() == "second\n"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "artifact.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_failed_write_preserves_previous_copy(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write_bytes(target, b"good")
        with pytest.raises(TypeError):
            atomic_write_bytes(target, "not bytes")   # type: ignore
        assert target.read_bytes() == b"good"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.bin"]

    def test_sha256_helpers_agree(self, tmp_path):
        target = tmp_path / "blob"
        atomic_write_bytes(target, b"payload")
        assert sha256_file(target) == sha256_bytes(b"payload")


class TestRunDir:
    IDENTITY = {"kind": "test", "scale": 0.1, "seed": 7}

    def test_create_open_roundtrip(self, tmp_path):
        run_dir = RunDir.create(tmp_path / "run", self.IDENTITY,
                                ["a", "b"])
        reopened = RunDir.open(tmp_path / "run")
        assert reopened.manifest["identity"] == \
            json.loads(json.dumps(self.IDENTITY))
        assert reopened.manifest["keys"] == ["a", "b"]

    def test_create_refuses_to_clobber(self, tmp_path):
        RunDir.create(tmp_path / "run", self.IDENTITY, ["a"])
        with pytest.raises(RunDirError, match="already holds"):
            RunDir.create(tmp_path / "run", self.IDENTITY, ["a"])

    def test_open_missing_fails(self, tmp_path):
        with pytest.raises(RunDirError, match="nothing to resume"):
            RunDir.open(tmp_path / "nope")

    def test_identity_mismatch_is_fatal(self, tmp_path):
        run_dir = RunDir.create(tmp_path / "run", self.IDENTITY, ["a"])
        with pytest.raises(RunDirError, match="identity mismatch"):
            run_dir.verify_identity({**self.IDENTITY, "seed": 8})
        # The matching identity verifies without warnings (the code
        # digest was just computed, so it cannot have drifted).
        assert run_dir.verify_identity(dict(self.IDENTITY)) == []

    def test_checkpoint_roundtrip(self, tmp_path):
        run_dir = RunDir.create(tmp_path / "run", self.IDENTITY, ["a"])
        run_dir.write_checkpoint("a", {"answer": 42})
        assert run_dir.checkpoint_status("a") == "ok"
        assert run_dir.load_checkpoint("a") == {"answer": 42}
        assert run_dir.completed_keys(["a", "b"]) == ["a"]

    def test_corrupt_checkpoint_is_detected_never_loaded(self, tmp_path):
        run_dir = RunDir.create(tmp_path / "run", self.IDENTITY, ["a"])
        run_dir.write_checkpoint("a", [1, 2, 3])
        run_dir.checkpoint_path("a").write_bytes(b"flipped bits")
        assert run_dir.checkpoint_status("a") == "corrupt"
        with pytest.raises(CorruptCheckpoint):
            run_dir.load_checkpoint("a")

    def test_missing_digest_sidecar_means_missing(self, tmp_path):
        run_dir = RunDir.create(tmp_path / "run", self.IDENTITY, ["a"])
        run_dir.write_checkpoint("a", 1)
        run_dir.digest_path("a").unlink()
        assert run_dir.checkpoint_status("a") == "missing"

    def test_state_roundtrip(self, tmp_path):
        run_dir = RunDir.create(tmp_path / "run", self.IDENTITY, ["a"])
        assert run_dir.state() == {"status": "unknown"}
        run_dir.write_state("running", completed=1, total=2)
        assert run_dir.state() == {"status": "running",
                                   "completed": 1, "total": 2}


class TestCrashHook:
    def test_parse_defaults_to_kill(self):
        assert parse_hooks("shard-0003:1") == {("shard-0003", 1): "kill"}

    def test_parse_multiple_hooks_with_modes(self):
        hooks = parse_hooks("a:1:hang, b:2:exit")
        assert hooks == {("a", 1): "hang", ("b", 2): "exit"}

    def test_parse_rejects_bad_syntax_and_modes(self):
        with pytest.raises(ValueError, match="bad hook"):
            parse_hooks("a")
        with pytest.raises(ValueError, match="unknown mode"):
            parse_hooks("a:1:explode")

    def test_noop_without_env_or_on_other_keys(self):
        maybe_crash("a", 1, environ={})
        maybe_crash("a", 2, environ={ENV_VAR: "a:1:raise"})
        maybe_crash("b", 1, environ={ENV_VAR: "a:1:raise"})

    def test_raise_mode_fires_on_exact_match(self):
        with pytest.raises(RuntimeError, match="crash hook"):
            maybe_crash("a", 1, environ={ENV_VAR: "a:1:raise"})


class TestWorkerIdentity:
    def test_plain_function(self):
        assert worker_identity(_double) == \
            "tests.test_recovery._double"

    def test_partial_folds_bound_arguments_in(self):
        import functools
        one = worker_identity(functools.partial(_double, value=1))
        two = worker_identity(functools.partial(_double, value=2))
        assert one.startswith("tests.test_recovery._double#")
        assert one != two


class TestDurableMapInline:
    def test_results_come_back_in_key_order(self):
        outcome = durable_map(_keys(4), [3, 1, 4, 1], _double)
        assert outcome.results == [6, 2, 8, 2]
        assert len(outcome.walls) == 4
        assert outcome.reused == ()

    def test_duplicate_keys_are_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            durable_map(["a", "a"], [1, 2], _double)

    def test_worker_exceptions_propagate_unretried(self, tmp_path):
        recovery = RecoveryConfig(run_dir=tmp_path / "run")
        with pytest.raises(RuntimeError, match="deterministic"):
            durable_map(_keys(2), [1, 2], _boom, recovery=recovery)
        assert RunDir.open(tmp_path / "run").state()["status"] == \
            "failed"

    def test_fresh_run_checkpoints_then_resume_reuses_all(
            self, tmp_path):
        recovery = RecoveryConfig(run_dir=tmp_path / "run")
        metrics = MetricsRegistry()
        first = durable_map(_keys(3), [1, 2, 3], _double,
                            recovery=recovery, metrics=metrics)
        assert metrics.snapshot()[
            "repro_recovery_checkpoints_written_total"] == 3.0
        resumed = durable_map(
            _keys(3), [1, 2, 3], _double,
            recovery=RecoveryConfig(run_dir=tmp_path / "run",
                                    resume=True))
        assert resumed.results == first.results
        assert set(resumed.reused) == set(_keys(3))
        assert RunDir.open(tmp_path / "run").state()["status"] == \
            "complete"

    def test_existing_run_dir_without_resume_is_refused(self, tmp_path):
        recovery = RecoveryConfig(run_dir=tmp_path / "run")
        durable_map(_keys(2), [1, 2], _double, recovery=recovery)
        with pytest.raises(RunDirError, match="resume"):
            durable_map(_keys(2), [1, 2], _double, recovery=recovery)

    def test_resume_of_empty_dir_is_refused(self, tmp_path):
        with pytest.raises(RunDirError, match="no manifest"):
            durable_map(_keys(2), [1, 2], _double,
                        recovery=RecoveryConfig(
                            run_dir=tmp_path / "nope", resume=True))

    def test_resume_against_other_plan_keys_is_refused(self, tmp_path):
        durable_map(_keys(2), [1, 2], _double,
                    recovery=RecoveryConfig(run_dir=tmp_path / "run"))
        with pytest.raises(RunDirError, match="keys do not match"):
            durable_map(_keys(3), [1, 2, 3], _double,
                        recovery=RecoveryConfig(
                            run_dir=tmp_path / "run", resume=True))

    def test_resume_against_other_identity_is_refused(self, tmp_path):
        durable_map(_keys(2), [1, 2], _double, identity={"seed": 1},
                    recovery=RecoveryConfig(run_dir=tmp_path / "run"))
        with pytest.raises(RunDirError, match="identity mismatch"):
            durable_map(_keys(2), [1, 2], _double,
                        identity={"seed": 2},
                        recovery=RecoveryConfig(
                            run_dir=tmp_path / "run", resume=True))

    def test_corrupt_checkpoint_is_recomputed_never_merged(
            self, tmp_path, capsys):
        recovery = RecoveryConfig(run_dir=tmp_path / "run")
        durable_map(_keys(3), [1, 2, 3], _double, recovery=recovery)
        run_dir = RunDir.open(tmp_path / "run")
        run_dir.checkpoint_path("item-1").write_bytes(
            pickle.dumps("poisoned result"))
        metrics = MetricsRegistry()
        resumed = durable_map(
            _keys(3), [1, 2, 3], _double, metrics=metrics,
            recovery=RecoveryConfig(run_dir=tmp_path / "run",
                                    resume=True))
        assert resumed.results == [2, 4, 6]   # not "poisoned result"
        assert set(resumed.reused) == {"item-0", "item-2"}
        assert metrics.snapshot()[
            "repro_recovery_corrupt_checkpoints_total"] == 1.0
        assert "digest check" in capsys.readouterr().err

    def test_interrupt_checkpoints_then_resume_is_bit_identical(
            self, tmp_path):
        keys, payloads = _keys(4), [5, 6, 7, 8]
        clean = durable_map(keys, payloads, _double)
        checks = {"count": 0}

        def stop_after_two():
            checks["count"] += 1
            return checks["count"] > 2

        with pytest.raises(RunInterrupted) as excinfo:
            durable_map(keys, payloads, _double,
                        recovery=RecoveryConfig(
                            run_dir=tmp_path / "run"),
                        should_stop=stop_after_two)
        assert excinfo.value.completed == 2
        assert excinfo.value.total == 4
        assert RunDir.open(tmp_path / "run").state()["status"] == \
            "interrupted"

        resumed = durable_map(
            keys, payloads, _double,
            recovery=RecoveryConfig(run_dir=tmp_path / "run",
                                    resume=True))
        assert set(resumed.reused) == {"item-0", "item-1"}
        assert pickle.dumps(resumed.results) == \
            pickle.dumps(clean.results)


class TestDurableMapPool:
    """Spawn-pool failure paths, driven by the deterministic crash hook."""

    def test_killed_worker_is_requeued_and_run_completes(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(ENV_VAR, "item-1:1:kill")
        metrics = MetricsRegistry()
        outcome = durable_map(
            _keys(3), [1, 2, 3], _double, jobs=2, metrics=metrics,
            recovery=RecoveryConfig(run_dir=tmp_path / "run"))
        assert outcome.results == [2, 4, 6]
        assert outcome.retries >= 1
        snapshot = metrics.snapshot()
        assert snapshot["repro_recovery_pool_rebuilds_total"] >= 1.0
        assert snapshot["repro_recovery_shard_retries_total"] >= 1.0
        assert "worker pool broke" in capsys.readouterr().err
        assert RunDir.open(tmp_path / "run").state()["status"] == \
            "complete"

    def test_exhausted_budget_fails_resumable_then_resumes(
            self, tmp_path, monkeypatch):
        # Kill every attempt the budget allows (1 original + 1 retry).
        monkeypatch.setenv(ENV_VAR, "item-1:1:kill,item-1:2:kill")
        recovery = RecoveryConfig(run_dir=tmp_path / "run",
                                  max_shard_retries=1)
        with pytest.raises(ShardLostError):
            durable_map(_keys(2), [1, 2], _double, jobs=2,
                        recovery=recovery)
        assert RunDir.open(tmp_path / "run").state()["status"] == \
            "failed"
        monkeypatch.delenv(ENV_VAR)
        resumed = durable_map(
            _keys(2), [1, 2], _double, jobs=2,
            recovery=RecoveryConfig(run_dir=tmp_path / "run",
                                    resume=True))
        assert resumed.results == [2, 4]

    def test_non_durable_run_survives_via_inline_fallback(
            self, monkeypatch, capsys):
        # Without a run dir the map must never die with a raw
        # BrokenProcessPool: after the pool budget, the lost item is
        # re-run in the coordinating process (crash hook disabled).
        monkeypatch.setenv(
            ENV_VAR, "item-1:1:kill,item-1:2:kill,item-1:3:kill")
        metrics = MetricsRegistry()
        outcome = durable_map(_keys(2), [1, 2], _double, jobs=2,
                              metrics=metrics)
        assert outcome.results == [2, 4]
        assert metrics.snapshot()[
            "repro_recovery_inline_fallbacks_total"] >= 1.0
        assert "re-running in-process" in capsys.readouterr().err

    def test_hung_worker_trips_watchdog_and_is_requeued(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(ENV_VAR, "item-1:1:hang")
        metrics = MetricsRegistry()
        # The hang hook sleeps for an hour, so any watchdog value trips
        # on the hung attempt; it must still be generous enough that
        # spawn-context pool startup on a slow or loaded host doesn't
        # charge the healthy items too and exhaust the attempt budget.
        outcome = durable_map(
            _keys(2), [1, 2], _double, jobs=2, metrics=metrics,
            recovery=RecoveryConfig(run_dir=tmp_path / "run",
                                    shard_timeout=8.0))
        assert outcome.results == [2, 4]
        assert metrics.snapshot()[
            "repro_recovery_shard_timeouts_total"] == 1.0
        assert "watchdog" in capsys.readouterr().err


class TestShardedRecovery:
    """End-to-end: the sharded replay survives worker loss and resumes
    bit-identically (the acceptance contract of this subsystem)."""

    def test_kill_resume_merge_is_bit_identical(
            self, tmp_path, monkeypatch):
        plan = ShardPlan(scale=SCALE, seed=SEED, shards=2)
        plain, _info = sharded_cloud_stats(plan)

        # A worker SIGKILLed mid-run costs a requeue, not the run ...
        monkeypatch.setenv(ENV_VAR, f"{shard_key(1)}:1:kill")
        recovered, info = sharded_cloud_stats(
            plan, jobs=2,
            recovery=RecoveryConfig(run_dir=tmp_path / "run"))
        assert info.shard_retries >= 1
        assert recovered == plain
        assert recovered.digest() == plain.digest()
        monkeypatch.delenv(ENV_VAR)

        # ... and a resume with one checkpoint corrupted recomputes
        # exactly that shard, still merging bit-identically.
        run_dir = RunDir.open(tmp_path / "run")
        run_dir.checkpoint_path(shard_key(0)).write_bytes(b"torn")
        resumed, resumed_info = sharded_cloud_stats(
            plan, recovery=RecoveryConfig(run_dir=tmp_path / "run",
                                          resume=True))
        assert resumed_info.reused_shards == 1
        assert resumed == plain
        assert resumed.digest() == plain.digest()

    def test_run_info_reports_reuse_and_retries(self, tmp_path):
        plan = ShardPlan(scale=SCALE, seed=SEED, shards=2)
        _stats, info = sharded_cloud_stats(
            plan, recovery=RecoveryConfig(run_dir=tmp_path / "run"))
        assert info.reused_shards == 0
        record = info.to_dict()
        assert record["reused_shards"] == 0
        assert record["shard_retries"] == 0

    def test_worker_errors_still_propagate_with_recovery(
            self, tmp_path):
        def boom(spec):
            raise RuntimeError("shard exploded")
        with pytest.raises(RuntimeError, match="shard exploded"):
            run_sharded(ShardPlan(scale=SCALE, seed=SEED, shards=2),
                        boom,
                        recovery=RecoveryConfig(
                            run_dir=tmp_path / "run"))


class TestGroupRunnerRecovery:
    def test_resume_skips_completed_groups(self, tmp_path):
        from repro.scale.runner import GROUPS, run_parallel
        reports, claims, _timings, failures = run_parallel(
            SCALE, SEED, jobs=1,
            recovery=RecoveryConfig(run_dir=tmp_path / "run"))
        assert failures == []

        metrics = MetricsRegistry()
        resumed_reports, resumed_claims, _t, resumed_failures = \
            run_parallel(SCALE, SEED, jobs=1, metrics=metrics,
                         recovery=RecoveryConfig(
                             run_dir=tmp_path / "run", resume=True))
        assert resumed_failures == []
        assert metrics.snapshot()[
            "repro_recovery_checkpoints_reused_total"] == \
            float(len(GROUPS))
        assert [report.render() for report in resumed_reports] == \
            [report.render() for report in reports]
        assert [(claim.claim, claim.holds)
                for claim in resumed_claims] == \
            [(claim.claim, claim.holds) for claim in claims]
