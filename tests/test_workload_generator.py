"""Tests for arrivals, the workload generator, sampler, and trace IO."""

import json
from collections import Counter

import numpy as np
import pytest

from repro.netsim.isp import ISP
from repro.sim.clock import DAY, WEEK
from repro.workload import (
    ArrivalProcess,
    WorkloadConfig,
    WorkloadGenerator,
    load_workload,
    sample_benchmark_requests,
    save_workload,
)
from repro.workload.records import (
    FetchRecord,
    PreDownloadRecord,
    RequestRecord,
)
from repro.workload.traceio import read_jsonl, write_jsonl


class TestArrivalProcess:
    def test_exact_count_sorted_in_horizon(self):
        process = ArrivalProcess()
        times = process.sample_times(5000, np.random.default_rng(0))
        assert len(times) == 5000
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0.0 and times[-1] <= WEEK

    def test_zero_count(self):
        process = ArrivalProcess()
        assert len(process.sample_times(0, np.random.default_rng(1))) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProcess().sample_times(-1, np.random.default_rng(2))

    def test_growth_loads_the_late_week(self):
        process = ArrivalProcess(growth=0.5, amplitude=0.0)
        times = process.sample_times(20000, np.random.default_rng(3))
        first_half = (times < WEEK / 2).mean()
        assert first_half < 0.47

    def test_intensity_positive(self):
        process = ArrivalProcess()
        grid = np.linspace(0, WEEK, 1000)
        assert np.all(process.intensity(grid) > 0)

    def test_diurnal_peak_in_the_evening(self):
        process = ArrivalProcess(growth=0.0, amplitude=0.5)
        hours = np.arange(24)
        intensity = process.intensity(hours * 3600.0)
        assert 19 <= hours[np.argmax(intensity)] <= 23


class TestWorkloadGenerator:
    def test_dimensions_scale(self, workload):
        config = workload.config
        assert len(workload.catalog) == config.file_count
        assert len(workload.users) == config.user_count
        # Tasks follow total catalog demand.
        assert len(workload.requests) == workload.catalog.total_demand()

    def test_requests_sorted_by_time(self, workload):
        times = [request.request_time for request in workload.requests]
        assert times == sorted(times)

    def test_request_fields_match_catalog(self, workload):
        for request in workload.requests[:300]:
            record = workload.catalog[request.file_id]
            assert request.file_size == record.size
            assert request.protocol is record.protocol
            assert request.file_type is record.file_type
            assert request.source_url == record.source_url

    def test_request_fields_match_user(self, workload):
        users = workload.user_by_id()
        for request in workload.requests[:300]:
            user = users[request.user_id]
            assert request.ip_address == user.ip_address
            assert request.access_bandwidth == user.reported_bandwidth

    def test_fetch_at_most_once_mostly_holds(self, workload):
        pairs = Counter((request.user_id, request.file_id)
                        for request in workload.requests)
        repeats = sum(1 for count in pairs.values() if count > 1)
        assert repeats / len(pairs) < 0.01

    def test_task_ids_unique(self, workload):
        ids = {request.task_id for request in workload.requests}
        assert len(ids) == len(workload.requests)

    def test_determinism(self):
        config = WorkloadConfig(scale=0.001, seed=99)
        first = WorkloadGenerator(config).generate()
        second = WorkloadGenerator(config).generate()
        assert len(first.requests) == len(second.requests)
        for a, b in zip(first.requests[:100], second.requests[:100]):
            assert a.to_dict() == b.to_dict()

    def test_request_class_shares(self, workload):
        shares = workload.request_class_shares()
        assert sum(shares.values()) == pytest.approx(1.0)


class TestSampler:
    def test_sample_is_unicom_with_bandwidth(self, workload,
                                             benchmark_sample):
        users = workload.user_by_id()
        for request in benchmark_sample:
            assert request.access_bandwidth is not None
            assert users[request.user_id].isp is ISP.UNICOM

    def test_sample_size(self, benchmark_sample):
        assert len(benchmark_sample) == 400

    def test_sample_without_replacement_when_possible(self, workload):
        sample = sample_benchmark_requests(workload, 100)
        assert len({request.task_id for request in sample}) == 100

    def test_invalid_count_rejected(self, workload):
        with pytest.raises(ValueError):
            sample_benchmark_requests(workload, 0)

    def test_empty_pool_rejected(self, workload):
        from repro.workload.generator import Workload
        empty = Workload(config=workload.config,
                         catalog=workload.catalog, users=[], requests=[])
        with pytest.raises(ValueError):
            sample_benchmark_requests(empty, 10)


class TestTraceIO:
    def test_jsonl_roundtrip_requests(self, workload, tmp_path):
        path = tmp_path / "requests.jsonl"
        rows = workload.requests[:50]
        assert write_jsonl(path, rows) == 50
        loaded = read_jsonl(path, RequestRecord)
        assert [r.to_dict() for r in loaded] == \
            [r.to_dict() for r in rows]

    def test_jsonl_roundtrip_pre_and_fetch_records(self, tmp_path):
        pre = PreDownloadRecord(
            task_id="t1", file_id="f1", start_time=0.0,
            finish_time=60.0, acquired_bytes=100.0, traffic_bytes=110.0,
            cache_hit=False, average_speed=1.7, peak_speed=2.0,
            success=True)
        fetch = FetchRecord(
            task_id="t1", user_id="u1", ip_address="1.2.3.4",
            access_bandwidth=None, start_time=60.0, finish_time=120.0,
            acquired_bytes=100.0, traffic_bytes=108.0,
            average_speed=1.7, peak_speed=2.2, rejected=False)
        path_a, path_b = tmp_path / "pre.jsonl", tmp_path / "fetch.jsonl"
        write_jsonl(path_a, [pre])
        write_jsonl(path_b, [fetch])
        assert read_jsonl(path_a, PreDownloadRecord)[0].to_dict() == \
            pre.to_dict()
        loaded_fetch = read_jsonl(path_b, FetchRecord)[0]
        assert loaded_fetch.access_bandwidth is None
        assert loaded_fetch.delay == 60.0

    def test_workload_save_load_roundtrip(self, tmp_path):
        config = WorkloadConfig(scale=0.0008, seed=5)
        workload = WorkloadGenerator(config).generate()
        directory = save_workload(workload, tmp_path / "trace")
        loaded = load_workload(directory)
        assert loaded.config.scale == config.scale
        assert len(loaded.catalog) == len(workload.catalog)
        assert len(loaded.users) == len(workload.users)
        assert [r.to_dict() for r in loaded.requests] == \
            [r.to_dict() for r in workload.requests]

    def test_gzipped_jsonl_roundtrip(self, tmp_path):
        from repro.workload.records import FileType, Protocol
        records = [RequestRecord(task_id=f"t{i}", user_id="u",
                                 ip_address="1.2.3.4",
                                 access_bandwidth=None,
                                 request_time=float(i), file_id="f",
                                 file_type=FileType.VIDEO,
                                 file_size=100.0,
                                 source_url="http://origin/f",
                                 protocol=Protocol.HTTP)
                   for i in range(50)]
        path = tmp_path / "requests.jsonl.gz"
        assert write_jsonl(path, records) == 50
        # Genuinely gzip on disk (magic bytes), not just a renamed file.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        loaded = read_jsonl(path, RequestRecord)
        assert [r.to_dict() for r in loaded] == \
            [r.to_dict() for r in records]

    def test_compressed_workload_save_load_roundtrip(self, tmp_path):
        config = WorkloadConfig(scale=0.0008, seed=5)
        workload = WorkloadGenerator(config).generate()
        directory = save_workload(workload, tmp_path / "trace",
                                  compress=True)
        assert (directory / "requests.jsonl.gz").exists()
        assert not (directory / "requests.jsonl").exists()
        assert (directory / "config.json").exists()
        loaded = load_workload(directory)
        assert [r.to_dict() for r in loaded.requests] == \
            [r.to_dict() for r in workload.requests]
        assert {f.file_id for f in loaded.catalog} == \
            {f.file_id for f in workload.catalog}


class TestTraceHardening:
    """Corrupt trace files fail with file:line context or, in lenient
    mode, load partially with the drops counted."""

    @staticmethod
    def _write_rows(path, rows):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(rows) + "\n")

    @staticmethod
    def _good_line(task_id="t-1"):
        from repro.workload.generator import WorkloadConfig, \
            WorkloadGenerator
        workload = WorkloadGenerator(
            WorkloadConfig(scale=0.001, seed=5)).generate()
        row = workload.requests[0].to_dict()
        row["task_id"] = task_id
        return json.dumps(row)

    def test_malformed_json_names_file_and_line(self, tmp_path):
        from repro.workload.traceio import TraceFormatError
        path = tmp_path / "requests.jsonl"
        self._write_rows(path, [self._good_line("t-1"),
                                "{not json", self._good_line("t-3")])
        with pytest.raises(TraceFormatError) as excinfo:
            read_jsonl(path, RequestRecord)
        assert excinfo.value.line == 2
        assert excinfo.value.path == path
        assert "requests.jsonl:2:" in str(excinfo.value)

    def test_missing_field_names_file_and_line(self, tmp_path):
        from repro.workload.traceio import TraceFormatError
        path = tmp_path / "requests.jsonl"
        row = json.loads(self._good_line())
        del row["file_id"]
        self._write_rows(path, [self._good_line(), json.dumps(row)])
        with pytest.raises(TraceFormatError) as excinfo:
            read_jsonl(path, RequestRecord)
        assert excinfo.value.line == 2

    def test_skip_bad_lines_salvages_and_counts(self, tmp_path):
        from repro.obs.registry import MetricsRegistry
        path = tmp_path / "requests.jsonl"
        self._write_rows(path, [self._good_line("t-1"), "oops",
                                self._good_line("t-3"), "{}"])
        metrics = MetricsRegistry()
        loaded = read_jsonl(path, RequestRecord, skip_bad_lines=True,
                            metrics=metrics)
        assert [r.task_id for r in loaded] == ["t-1", "t-3"]
        assert metrics.snapshot()[
            'repro_trace_skipped_lines_total{file="requests.jsonl"}'] \
            == 2.0

    def test_truncated_gzip_raises_trace_format_error(self, tmp_path):
        import gzip as gzip_module
        from repro.workload.traceio import TraceFormatError
        path = tmp_path / "requests.jsonl.gz"
        blob = gzip_module.compress(
            ("\n".join([self._good_line(f"t-{i}") for i in range(50)])
             + "\n").encode())
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(TraceFormatError):
            read_jsonl(path, RequestRecord)

    def test_skip_bad_lines_inside_gzip_salvages_and_counts(
            self, tmp_path):
        import gzip as gzip_module
        from repro.obs.registry import MetricsRegistry
        path = tmp_path / "requests.jsonl.gz"
        text = "\n".join([self._good_line("t-1"), "{corrupt",
                          self._good_line("t-3")]) + "\n"
        path.write_bytes(gzip_module.compress(text.encode()))
        metrics = MetricsRegistry()
        loaded = read_jsonl(path, RequestRecord, skip_bad_lines=True,
                            metrics=metrics)
        assert [r.task_id for r in loaded] == ["t-1", "t-3"]
        assert metrics.snapshot()[
            'repro_trace_skipped_lines_total{file="requests.jsonl.gz"}'] \
            == 1.0

    def test_strict_gzip_error_names_file_and_decompressed_line(
            self, tmp_path):
        import gzip as gzip_module
        from repro.workload.traceio import TraceFormatError
        path = tmp_path / "requests.jsonl.gz"
        text = "\n".join([self._good_line("t-1"), self._good_line("t-2"),
                          "nope"]) + "\n"
        path.write_bytes(gzip_module.compress(text.encode()))
        with pytest.raises(TraceFormatError) as excinfo:
            read_jsonl(path, RequestRecord)
        assert excinfo.value.path == path
        assert excinfo.value.line == 3
        assert "requests.jsonl.gz:3:" in str(excinfo.value)

    def test_lenient_gzip_roundtrip_matches_strict_on_clean_file(
            self, tmp_path):
        import gzip as gzip_module
        path = tmp_path / "requests.jsonl.gz"
        text = "\n".join([self._good_line(f"t-{i}")
                          for i in range(10)]) + "\n"
        path.write_bytes(gzip_module.compress(text.encode()))
        strict = read_jsonl(path, RequestRecord)
        lenient = read_jsonl(path, RequestRecord, skip_bad_lines=True)
        assert [r.to_dict() for r in strict] == \
            [r.to_dict() for r in lenient]

    def test_clean_file_identical_through_hardened_reader(self, tmp_path):
        from repro.obs.registry import MetricsRegistry
        path = tmp_path / "requests.jsonl"
        self._write_rows(path, [self._good_line(f"t-{i}")
                                for i in range(10)])
        strict = read_jsonl(path, RequestRecord)
        metrics = MetricsRegistry()
        lenient = read_jsonl(path, RequestRecord, skip_bad_lines=True,
                             metrics=metrics)
        assert [r.to_dict() for r in strict] == \
            [r.to_dict() for r in lenient]
        assert metrics.snapshot()[
            'repro_trace_skipped_lines_total{file="requests.jsonl"}'] \
            == 0.0
