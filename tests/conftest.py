"""Shared fixtures: one small synthetic week reused across test modules.

Session-scoped so the expensive artefacts (workload, cloud run, AP
replay) are built once; tests treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ap.benchrig import ApBenchmarkRig
from repro.cloud import CloudConfig, XuanfengCloud
from repro.workload import (
    WorkloadConfig,
    WorkloadGenerator,
    sample_benchmark_requests,
)

#: Small but statistically meaningful: ~2,800 files / ~20k tasks.
TEST_SCALE = 0.005
TEST_SEED = 20150222


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(7)


@pytest.fixture(scope="session")
def workload():
    config = WorkloadConfig(scale=TEST_SCALE, seed=TEST_SEED)
    return WorkloadGenerator(config).generate()


@pytest.fixture(scope="session")
def cloud_and_result(workload):
    cloud = XuanfengCloud(CloudConfig(scale=TEST_SCALE))
    result = cloud.run(workload)
    return cloud, result


@pytest.fixture(scope="session")
def cloud_result(cloud_and_result):
    return cloud_and_result[1]


@pytest.fixture(scope="session")
def cloud(cloud_and_result):
    return cloud_and_result[0]


@pytest.fixture(scope="session")
def benchmark_sample(workload):
    return sample_benchmark_requests(workload, 400)


@pytest.fixture(scope="session")
def ap_report(workload, benchmark_sample):
    rig = ApBenchmarkRig(workload.catalog)
    return rig.replay(benchmark_sample)


@pytest.fixture()
def fresh_rng():
    """Per-test RNG for tests that consume randomness."""
    return np.random.default_rng(12345)
