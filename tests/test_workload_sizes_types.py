"""Tests for file-size and file-type models (Figure 5 / section 3)."""

import numpy as np
import pytest

from repro.workload.filetypes import FileType, FileTypeModel
from repro.workload.sizes import FileSizeModel


class TestFileSizeModel:
    @pytest.fixture(scope="class")
    def sample(self):
        model = FileSizeModel()
        rng = np.random.default_rng(0)
        return np.array([model.sample(rng)[0] for _ in range(20000)])

    def test_bounds(self, sample):
        model = FileSizeModel()
        assert sample.min() >= model.min_size
        assert sample.max() <= model.max_size

    def test_small_share(self, sample):
        share = (sample < 8e6).mean()
        assert share == pytest.approx(0.25, abs=0.02)

    def test_median_near_115mb(self, sample):
        assert np.median(sample) == pytest.approx(115e6, rel=0.10)

    def test_mean_near_390mb(self, sample):
        assert sample.mean() == pytest.approx(390e6, rel=0.08)

    def test_small_flag_is_consistent(self):
        model = FileSizeModel()
        rng = np.random.default_rng(1)
        for _ in range(500):
            size, is_small = model.sample(rng)
            assert is_small == (size < model.small_threshold)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            FileSizeModel(min_size=10.0, small_threshold=5.0)
        with pytest.raises(ValueError):
            FileSizeModel(small_share=1.5)

    def test_sample_many_length(self):
        model = FileSizeModel()
        rng = np.random.default_rng(2)
        assert len(model.sample_many(17, rng)) == 17


class TestFileTypeModel:
    def test_default_mixes_sum_to_one(self):
        model = FileTypeModel()
        assert sum(model.small_mix.values()) == pytest.approx(1.0)
        assert sum(model.large_mix.values()) == pytest.approx(1.0)

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            FileTypeModel(small_mix={FileType.VIDEO: 0.5})

    def test_large_files_are_mostly_video(self):
        model = FileTypeModel()
        rng = np.random.default_rng(3)
        draws = [model.sample(False, rng) for _ in range(3000)]
        video = sum(1 for t in draws if t is FileType.VIDEO) / len(draws)
        assert 0.85 < video < 0.93

    def test_overall_mix_matches_paper(self):
        # 25% small + 75% large should blend to ~75% video / ~14%
        # software (section 3: 75% / 15%).
        model = FileTypeModel()
        rng = np.random.default_rng(4)
        draws = [model.sample(rng.random() < 0.25, rng)
                 for _ in range(8000)]
        video = sum(1 for t in draws if t is FileType.VIDEO) / len(draws)
        software = sum(1 for t in draws
                       if t is FileType.SOFTWARE) / len(draws)
        assert video == pytest.approx(0.75, abs=0.03)
        assert software == pytest.approx(0.145, abs=0.03)
