"""Tests for the sharded, multi-process execution subsystem."""

import pickle

import pytest

from repro.experiments import REGISTRY
from repro.experiments.runner import ORDER
from repro.obs import MetricsRegistry, QuantileSketch, merge_registries
from repro.scale import (
    GROUPS,
    ScaleRunInfo,
    ShardPlan,
    ShardRunStats,
    check_group_coverage,
    merge_cdfs,
    merge_stats,
    merge_workloads,
    sharded_ap_replay,
    sharded_cloud_stats,
    sharded_generate,
    stable_hash,
)
from repro.scale.executor import run_sharded
from repro.scale.pipelines import generate_shard_worker
from repro.workload.generator import WorkloadConfig

SCALE = 0.0008
SEED = 20150222


def _tiny_plan(shards: int) -> ShardPlan:
    return ShardPlan(scale=SCALE, seed=SEED, shards=shards)


def _workload_key(workload):
    """Comparable snapshot of a workload's full content."""
    return (
        {fid: record.to_dict()
         for fid, record in workload.catalog.files.items()},
        [user.to_dict() for user in workload.users],
        [request.to_dict() for request in workload.requests],
    )


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("file:7") == stable_hash("file:7")

    def test_label_sensitivity(self):
        assert stable_hash("file:7") != stable_hash("file:8")

    def test_fits_in_64_bits(self):
        assert 0 <= stable_hash("anything") < 2 ** 64


class TestShardPlan:
    def test_every_file_owned_by_exactly_one_shard(self):
        plan = _tiny_plan(4)
        seen = []
        for spec in plan.specs():
            seen.extend(spec.file_indices())
        assert sorted(seen) == list(range(plan.file_count))

    def test_every_user_owned_by_exactly_one_shard(self):
        plan = _tiny_plan(4)
        seen = []
        for spec in plan.specs():
            seen.extend(spec.user_indices())
        assert sorted(seen) == list(range(plan.user_count))

    def test_single_shard_owns_everything(self):
        plan = _tiny_plan(1)
        spec, = plan.specs()
        assert list(spec.file_indices()) == list(range(plan.file_count))

    def test_membership_is_stable(self):
        plan = _tiny_plan(8)
        assert [plan.shard_of_file(i) for i in range(50)] == \
            [plan.shard_of_file(i) for i in range(50)]

    def test_counts_match_the_sequential_generator(self):
        plan = _tiny_plan(4)
        config = WorkloadConfig(scale=SCALE, seed=SEED)
        assert plan.file_count == config.file_count
        assert plan.user_count == config.user_count


class TestShardedGeneration:
    def test_merged_workload_is_shard_count_invariant(self):
        keys = []
        for shards in (1, 4):
            workload, _info = sharded_generate(_tiny_plan(shards))
            keys.append(_workload_key(workload))
        assert keys[0] == keys[1]

    def test_requests_come_out_in_time_order(self):
        workload, _info = sharded_generate(_tiny_plan(4))
        order = [(r.request_time, r.task_id) for r in workload.requests]
        assert order == sorted(order)

    def test_dimensions_match_the_plan(self):
        plan = _tiny_plan(4)
        workload, _info = sharded_generate(plan)
        assert len(workload.catalog.files) == plan.file_count
        assert len(workload.users) == plan.user_count

    def test_merge_rejects_duplicate_files(self):
        plan = _tiny_plan(2)
        part = generate_shard_worker(plan.spec(0))
        with pytest.raises(ValueError):
            merge_workloads(plan, [part, part])


class TestShardedCloudStats:
    def test_stats_are_shard_count_invariant(self):
        merged = []
        for shards in (1, 4):
            stats, _info = sharded_cloud_stats(_tiny_plan(shards))
            merged.append(stats)
        assert merged[0] == merged[1]

    def test_jobs_do_not_change_the_answer(self):
        sequential, _ = sharded_cloud_stats(_tiny_plan(4), jobs=1)
        parallel, info = sharded_cloud_stats(_tiny_plan(4), jobs=2)
        assert sequential == parallel
        assert info.jobs == 2
        assert len(info.shard_walls) == 4

    def test_headline_statistics_are_plausible(self):
        stats, _info = sharded_cloud_stats(_tiny_plan(4))
        assert stats.tasks > 0
        assert 0.5 < stats.cache_hit_ratio < 1.0
        assert 0.0 < stats.request_failure_ratio < 0.3
        assert stats.peak_burden > 0.0


class TestShardedApReplay:
    def test_matches_the_sequential_rig(self, workload):
        from repro.ap.benchrig import ApBenchmarkRig
        requests = workload.requests[:30]
        sequential = ApBenchmarkRig(workload.catalog, seed=7).replay(
            requests)
        parallel, info = sharded_ap_replay(
            workload.catalog, requests, jobs=1, seed=7)
        assert [r.record.to_dict() for r in sequential.results] == \
            [r.record.to_dict() for r in parallel.results]
        assert [r.ap_name for r in sequential.results] == \
            [r.ap_name for r in parallel.results]
        assert sequential.failure_ratio == parallel.failure_ratio
        assert info.shards == 3


class TestExecutor:
    def test_results_arrive_in_shard_order(self):
        plan = _tiny_plan(4)
        results, info = run_sharded(
            plan, lambda spec: f"shard-{spec.shard}")
        assert results == [f"shard-{k}" for k in range(4)]
        assert info.jobs == 1 and info.shards == 4
        assert info.work_seconds >= 0.0

    def test_worker_errors_propagate(self):
        def boom(spec):
            raise RuntimeError("shard exploded")
        with pytest.raises(RuntimeError, match="shard exploded"):
            run_sharded(_tiny_plan(2), boom)

    def test_run_info_serialises(self):
        info = ScaleRunInfo(jobs=2, shards=4, wall_seconds=1.5,
                            shard_walls=(0.1, 0.2, 0.3, 0.4))
        record = info.to_dict()
        assert record["jobs"] == 2
        assert record["shard_walls"] == [0.1, 0.2, 0.3, 0.4]
        assert record["work_seconds"] == pytest.approx(1.0)


class TestReducers:
    def test_merge_cdfs_concatenates_samples(self):
        from repro.analysis.cdf import empirical_cdf
        left = empirical_cdf([1.0, 2.0])
        right = empirical_cdf([3.0])
        merged = merge_cdfs([left, right])
        assert sorted(merged.values) == [1.0, 2.0, 3.0]

    def test_merge_cdfs_rejects_nothing(self):
        with pytest.raises(ValueError):
            merge_cdfs([])

    def test_merge_stats_rejects_horizon_mismatch(self):
        with pytest.raises(ValueError):
            merge_stats([ShardRunStats(horizon=100.0),
                         ShardRunStats(horizon=200.0)])

    def test_empty_stats_merge_to_empty(self):
        merged = merge_stats([ShardRunStats(horizon=100.0),
                              ShardRunStats(horizon=100.0)])
        assert merged.tasks == 0
        assert merged.cache_hit_ratio == 0.0

    def test_quantile_sketch_equality_and_merge(self):
        a, b = QuantileSketch(), QuantileSketch()
        for value in (1.0, 5.0, 20.0):
            a.add(value)
            b.add(value)
        assert a == b
        b.add(7.0)
        assert a != b
        a.add(7.0)
        merged = QuantileSketch()
        merged.merge(a)
        assert merged == b

    def test_registry_merge_and_pickle_roundtrip(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("repro_scale_tasks_total", shard=0).inc(3)
        right.counter("repro_scale_tasks_total", shard=0).inc(2)
        right.counter("repro_scale_tasks_total", shard=1).inc(1)
        merged = merge_registries([left, right])
        snapshot = merged.snapshot()
        assert snapshot['repro_scale_tasks_total{shard="0"}'] == 5
        assert snapshot['repro_scale_tasks_total{shard="1"}'] == 1
        revived = pickle.loads(pickle.dumps(merged))
        assert revived.snapshot() == snapshot


class TestGroupCoverage:
    """Drift guards: the experiment registry, the document ORDER and the
    parallel driver GROUPS must all agree, so a newly registered
    experiment cannot silently drop out of either runner."""

    def test_order_covers_registry_exactly_once(self):
        assert sorted(ORDER) == sorted(REGISTRY)
        assert len(ORDER) == len(set(ORDER))

    def test_groups_cover_order_exactly_once(self):
        grouped = [experiment_id
                   for ids, _warm in GROUPS.values()
                   for experiment_id in ids]
        assert sorted(grouped) == sorted(ORDER)

    def test_check_group_coverage_passes(self):
        check_group_coverage()


class TestParallelExperiments:
    def test_document_is_jobs_invariant(self):
        from repro.scale.runner import run_parallel
        outputs = []
        for jobs in (1, 2):
            reports, claims, timings, failures = run_parallel(
                SCALE, SEED, jobs=jobs)
            outputs.append((
                [report.render() for report in reports],
                [(claim.claim, claim.holds) for claim in claims],
            ))
            assert set(timings) == set(ORDER)
            assert failures == []
        assert outputs[0] == outputs[1]
