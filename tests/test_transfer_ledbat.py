"""Tests for the LEDBAT (RFC 6817) controller and scavenging model."""

import numpy as np
import pytest

from repro.transfer.ledbat import (
    BottleneckLink,
    LedbatController,
    MIN_CWND,
    TARGET_DELAY,
    simulate_scavenging,
)


class TestBaseDelayTracking:
    def test_base_delay_is_minimum_observed(self):
        controller = LedbatController()
        for delay in (0.12, 0.08, 0.15):
            controller.on_delay_sample(delay, now=1.0)
        assert controller.base_delay == pytest.approx(0.08)

    def test_base_history_is_windowed_by_minutes(self):
        controller = LedbatController()
        controller.on_delay_sample(0.05, now=0.0)
        # Eleven minutes later the old minimum has aged out of the
        # 10-minute history and a higher floor becomes the base.
        for minute in range(1, 13):
            controller.on_delay_sample(0.09, now=60.0 * minute)
        assert controller.base_delay == pytest.approx(0.09)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            LedbatController().on_delay_sample(-0.1, now=0.0)


class TestWindowDynamics:
    def test_grows_when_queue_below_target(self):
        controller = LedbatController()
        before = controller.cwnd
        for _ in range(50):
            controller.on_delay_sample(0.05, now=0.0)   # no queueing
        assert controller.cwnd > before

    def test_shrinks_when_queue_above_target(self):
        controller = LedbatController(cwnd=50.0)
        controller.on_delay_sample(0.05, now=0.0)       # set base
        for _ in range(200):
            controller.on_delay_sample(0.05 + 3 * TARGET_DELAY, now=1.0)
        assert controller.cwnd < 50.0

    def test_converges_to_capacity_with_bounded_queue(self):
        # Against a fixed-capacity link with no competition, LEDBAT
        # should saturate the link while holding the standing queue
        # below (at most near) the 100 ms target.
        link = BottleneckLink(capacity=1e6, propagation_delay=0.02)
        result = simulate_scavenging(link, [0.0] * 3000, step=0.05)
        tail = result.ledbat_rate_series[-100:]
        # Utilises essentially the whole idle link...
        assert np.mean(tail) > 0.9e6
        # ...with a positive but bounded standing queue.
        queueing = link.one_way_delay() - link.propagation_delay
        assert 0.0 < queueing < 1.5 * TARGET_DELAY

    def test_loss_halves_the_window(self):
        controller = LedbatController(cwnd=40.0)
        controller.on_loss()
        assert controller.cwnd == 20.0
        for _ in range(20):
            controller.on_loss()
        assert controller.cwnd == MIN_CWND

    def test_window_never_below_minimum(self):
        controller = LedbatController()
        controller.on_delay_sample(0.01, now=0.0)
        for _ in range(500):
            controller.on_delay_sample(5.0, now=1.0)
        assert controller.cwnd >= MIN_CWND

    def test_sending_rate_follows_window(self):
        controller = LedbatController(cwnd=10.0, rtt_estimate=0.1)
        assert controller.sending_rate() == \
            pytest.approx(10.0 * controller.mss / 0.1)


class TestBottleneckLink:
    def test_queue_grows_when_overloaded(self):
        link = BottleneckLink(capacity=1e6)
        link.advance(foreground_rate=1.5e6, ledbat_rate=0.0, dt=1.0)
        assert link.queue_bytes == pytest.approx(0.5e6)
        assert link.one_way_delay() > link.propagation_delay

    def test_queue_drains_when_idle(self):
        link = BottleneckLink(capacity=1e6, queue_bytes=0.5e6)
        link.advance(0.0, 0.0, dt=1.0)
        assert link.queue_bytes == 0.0

    def test_overflow_reports_loss(self):
        link = BottleneckLink(capacity=1e5, max_queue_bytes=1e5)
        assert link.advance(1e6, 0.0, dt=1.0)
        assert link.queue_bytes == 1e5

    def test_dt_validation(self):
        with pytest.raises(ValueError):
            BottleneckLink(capacity=1e6).advance(0.0, 0.0, dt=0.0)


class TestScavenging:
    def test_ledbat_yields_to_foreground_bursts(self):
        """The property the paper wants for seeding traffic: use idle
        capacity, get out of the way when users arrive."""
        link = BottleneckLink(capacity=1e6, propagation_delay=0.02)
        idle = [0.0] * 1500
        busy = [0.95e6] * 1500
        profile = idle + busy + idle
        result = simulate_scavenging(link, profile, step=0.05)
        rates = np.array(result.ledbat_rate_series)
        idle_rate = rates[1000:1500].mean()
        busy_rate = rates[2500:3000].mean()
        recovery_rate = rates[-300:].mean()
        assert idle_rate > 0.7e6           # scavenges the idle link
        assert busy_rate < 0.35 * idle_rate  # yields under load
        assert recovery_rate > 0.6e6       # and comes back afterwards
        # Foreground keeps the lion's share while busy.
        assert result.foreground_share_when_busy > 0.7

    def test_queueing_delay_stays_bounded(self):
        link = BottleneckLink(capacity=1e6, propagation_delay=0.02)
        result = simulate_scavenging(link, [0.3e6] * 2000, step=0.05)
        assert result.mean_queueing_delay < 3 * TARGET_DELAY
