"""Tests for the dependency-free SVG chart renderer."""

import math

import pytest

from repro.analysis.svg import Axis, SvgFigure, _tick_label


class TestAxis:
    def test_linear_projection_endpoints(self):
        axis = Axis(0.0, 10.0, (100.0, 200.0))
        assert axis.project(0.0) == 100.0
        assert axis.project(10.0) == 200.0
        assert axis.project(5.0) == 150.0

    def test_inverted_pixel_range_for_y(self):
        axis = Axis(0.0, 1.0, (400.0, 50.0))
        assert axis.project(0.0) == 400.0
        assert axis.project(1.0) == 50.0

    def test_log_projection(self):
        axis = Axis(1.0, 1000.0, (0.0, 300.0), log=True)
        assert axis.project(1.0) == 0.0
        assert axis.project(1000.0) == 300.0
        assert axis.project(10.0) == pytest.approx(100.0)

    def test_log_axis_needs_positive_bounds(self):
        with pytest.raises(ValueError):
            Axis(0.0, 10.0, (0.0, 1.0), log=True)

    def test_log_ticks_are_decades(self):
        axis = Axis(1.0, 1000.0, (0.0, 1.0), log=True)
        assert axis.ticks() == [1.0, 10.0, 100.0, 1000.0]

    def test_degenerate_range_widened(self):
        axis = Axis(5.0, 5.0, (0.0, 100.0))
        assert axis.project(5.0) == 0.0


class TestTickLabels:
    def test_magnitude_suffixes(self):
        assert _tick_label(0) == "0"
        assert _tick_label(2500) == "2.5k"
        assert _tick_label(3e6) == "3M"
        assert _tick_label(4.2e9) == "4.2G"
        assert _tick_label(0.001) == "1e-03"


class TestSvgFigure:
    def make_figure(self):
        figure = SvgFigure("Title", "X", "Y")
        figure.add_line([0, 1, 2], [0.0, 0.5, 1.0], "series-a")
        return figure

    def test_render_is_wellformed_svg(self):
        import xml.etree.ElementTree as ET
        svg = self.make_figure().render()
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_render_contains_title_labels_and_legend(self):
        svg = self.make_figure().render()
        for text in ("Title", "X", "Y", "series-a"):
            assert text in svg

    def test_scatter_renders_circles(self):
        figure = SvgFigure("T", "x", "y")
        figure.add_scatter([1, 2, 3], [3, 2, 1], "dots")
        assert figure.render().count("<circle") == 3

    def test_hline_renders_dashed_reference(self):
        figure = self.make_figure()
        figure.add_hline(0.8, "limit")
        svg = figure.render()
        assert "limit" in svg and "stroke-dasharray" in svg

    def test_empty_figure_rejected(self):
        with pytest.raises(ValueError):
            SvgFigure("T", "x", "y").render()

    def test_mismatched_series_rejected(self):
        figure = SvgFigure("T", "x", "y")
        with pytest.raises(ValueError):
            figure.add_line([1, 2], [1.0], "bad")
        with pytest.raises(ValueError):
            figure.add_line([], [], "empty")

    def test_title_is_escaped(self):
        figure = SvgFigure("a < b & c", "x", "y")
        figure.add_line([0, 1], [0, 1], "s")
        svg = figure.render()
        assert "a &lt; b &amp; c" in svg

    def test_colors_cycle(self):
        figure = SvgFigure("T", "x", "y")
        for index in range(3):
            figure.add_line([0, 1], [0, index], f"s{index}")
        colors = {series.color for series in figure.series}
        assert len(colors) == 3

    def test_log_log_figure_renders(self):
        figure = SvgFigure("T", "x", "y", xlog=True, ylog=True)
        figure.add_line([1, 10, 100], [1000, 100, 10], "s")
        assert "<path" in figure.render()


class TestFiguresModule:
    def test_render_all_produces_every_figure(self, tmp_path):
        from repro.experiments.context import ExperimentContext
        from repro.experiments.figures import FIGURES, render_all
        context = ExperimentContext(scale=0.0015)
        written = render_all(context, tmp_path)
        assert len(written) == len(FIGURES)
        for path in written:
            content = path.read_text()
            assert content.startswith("<svg")
            assert content.rstrip().endswith("</svg>")
