"""Tests for repro.serve.supervisor: the self-healing worker pool.

The load-bearing properties:

* a SIGKILLed worker is detected, restarted, and the pool returns to
  full health while (and despite) live load -- and decisions are still
  valid afterwards;
* rolling restart replaces every worker PID without the pool ever
  answering with an error;
* a worker that crashes on every start trips the restart-storm breaker:
  the supervisor gives the slot up and reports degraded capacity
  instead of flapping forever;
* supervisor events and obs instruments record each transition.

These tests spawn real worker processes (spawn context, ~2 s each), so
the pool is shared module-wide where state allows.
"""

import http.client
import json
import os
import signal
import threading
import time

import pytest

from repro.obs import MetricsRegistry
from repro.serve.supervisor import (
    SupervisorConfig,
    SupervisorThread,
    WorkerSupervisor,
    slot_of_target,
)

DECIDE = ("/decide?link=http%3A%2F%2Forigin%2Ffile.bin"
          "&popularity=500&bandwidth_mbps=20")


def get(host, port, path, timeout=5.0):
    connection = http.client.HTTPConnection(host, port,
                                            timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def wait_until(predicate, timeout, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(scope="module")
def pool():
    metrics = MetricsRegistry()
    supervisor = WorkerSupervisor(
        2, config=SupervisorConfig(probe_interval=0.2,
                                   backoff_base=0.1,
                                   drain_grace=3.0),
        metrics=metrics)
    runner = SupervisorThread(supervisor)
    runner.start(timeout=60.0)
    yield supervisor, metrics
    runner.stop()


class TestTargetGrammar:
    def test_slot_of_target(self):
        assert slot_of_target("serve:worker-0") == 0
        assert slot_of_target("serve:worker-13") == 13
        assert slot_of_target("isp:telecom") is None
        assert slot_of_target("serve:worker-x") is None


class TestSupervisedPool:
    def test_pool_starts_healthy_and_serves(self, pool):
        supervisor, _metrics = pool
        assert supervisor.healthy_workers == 2
        status, body = get(supervisor.host, supervisor.port, DECIDE)
        assert status == 200
        json.loads(body)

    def test_kill_recovery_mid_load(self, pool):
        """SIGKILL one worker under live load: the supervisor restarts
        it, the pool returns to full health, decisions stay valid."""
        supervisor, metrics = pool
        stop = threading.Event()
        served = []

        def load():
            while not stop.is_set():
                try:
                    status, _body = get(supervisor.host,
                                        supervisor.port, DECIDE,
                                        timeout=1.0)
                    served.append(status)
                except OSError:
                    pass   # resets around the kill are the point
                time.sleep(0.01)

        driver = threading.Thread(target=load, daemon=True)
        driver.start()
        try:
            victim = supervisor.pid_of(0)
            assert victim is not None
            os.kill(victim, signal.SIGKILL)
            assert wait_until(
                lambda: supervisor.pid_of(0) not in (None, victim)
                and supervisor.healthy_workers == 2, timeout=30.0)
        finally:
            stop.set()
            driver.join(5.0)
        # The replacement is a different process and the event log
        # shows the full exit -> backoff -> spawn -> ready arc.
        assert supervisor.pid_of(0) != victim
        kinds = [record["event"] for record in supervisor.events]
        assert "worker_exit" in kinds
        assert "backoff" in kinds
        assert kinds.count("ready") >= 3   # 2 starts + >= 1 restart
        assert supervisor.restarts_total >= 1
        assert metrics.counter("repro_serve_worker_restarts_total",
                               reason="exit").value >= 1
        assert metrics.gauge(
            "repro_serve_pool_healthy_workers").value == 2.0
        # Load kept being served and decisions are valid afterwards.
        assert served.count(200) > 0
        status, body = get(supervisor.host, supervisor.port, DECIDE)
        assert status == 200
        json.loads(body)

    def test_rolling_restart_replaces_every_pid(self, pool):
        supervisor, metrics = pool
        assert wait_until(
            lambda: supervisor.healthy_workers == 2, timeout=30.0)
        before = {rank: supervisor.pid_of(rank) for rank in (0, 1)}
        assert supervisor.rolling_restart(timeout_per_worker=30.0)
        after = {rank: supervisor.pid_of(rank) for rank in (0, 1)}
        assert all(after[rank] != before[rank] for rank in (0, 1))
        assert supervisor.healthy_workers == 2
        status, _body = get(supervisor.host, supervisor.port, DECIDE)
        assert status == 200
        assert metrics.counter("repro_serve_worker_restarts_total",
                               reason="rolling").value == 2


class TestRestartBreaker:
    def test_crash_looping_worker_trips_the_breaker(self, monkeypatch):
        """A worker that dies on every start must not be restarted
        forever: after the budget the supervisor gives the slot up and
        reports degraded capacity."""
        monkeypatch.setenv("REPRO_SERVE_WORKER_CRASH", "1:9")
        metrics = MetricsRegistry()
        supervisor = WorkerSupervisor(
            2, config=SupervisorConfig(probe_interval=0.1,
                                       backoff_base=0.05,
                                       backoff_cap=0.2,
                                       restart_budget=2,
                                       restart_window=60.0,
                                       drain_grace=3.0),
            metrics=metrics)
        runner = SupervisorThread(supervisor)
        runner.start(timeout=90.0)
        try:
            assert wait_until(lambda: supervisor.degraded,
                              timeout=60.0)
            # Slot 0 is untouched; the pool serves at reduced capacity.
            assert supervisor.healthy_workers == 1
            status, _body = get(supervisor.host, supervisor.port,
                                DECIDE)
            assert status == 200
        finally:
            runner.stop()
        snapshot = supervisor.snapshot()
        assert snapshot[1]["state"] in ("failed", "stopped")
        assert all(code == 9 for code in snapshot[1]["exit_codes"])
        kinds = [record["event"] for record in supervisor.events]
        assert "gave_up" in kinds
        assert metrics.counter(
            "repro_serve_worker_giveups_total").value == 1


class TestProbeBudget:
    """A wedged-but-listening admin port cannot stall supervision."""

    @staticmethod
    def _blackhole_listener():
        """A socket that accepts connections and never answers --
        what a probe_blackhole wedge looks like from outside."""
        import socket
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        accepted = []

        def accept_loop():
            while True:
                try:
                    conn, _addr = listener.accept()
                except OSError:
                    return
                accepted.append(conn)   # hold it open, read nothing

        thread = threading.Thread(target=accept_loop, daemon=True)
        thread.start()
        return listener, accepted

    def test_hung_probe_is_a_miss_within_one_budget(self):
        listener, accepted = self._blackhole_listener()
        port = listener.getsockname()[1]
        supervisor = WorkerSupervisor(
            2, config=SupervisorConfig(probe_timeout=0.4))
        try:
            started = time.monotonic()
            out = supervisor._probe_all([(0, port)])
            elapsed = time.monotonic() - started
        finally:
            listener.close()
            for conn in accepted:
                conn.close()
        # The hang costs at most one probe budget (plus thread slack),
        # and it reads as a miss, not a stall.
        assert out[0] == (None, None)
        assert elapsed < 2.0

    def test_hung_probe_does_not_serialize_healthy_probes(self):
        import socketserver
        from http.server import BaseHTTPRequestHandler

        class Healthz(BaseHTTPRequestHandler):
            def do_GET(self):
                body = b'{"status": "ok"}' \
                    if self.path == "/healthz" else b'{"sheds": 0}'
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):   # noqa: ARG002 - quiet
                pass

        healthy = socketserver.TCPServer(("127.0.0.1", 0), Healthz)
        healthy_thread = threading.Thread(
            target=healthy.serve_forever, daemon=True)
        healthy_thread.start()
        listener, accepted = self._blackhole_listener()
        supervisor = WorkerSupervisor(
            2, config=SupervisorConfig(probe_timeout=0.4))
        try:
            started = time.monotonic()
            out = supervisor._probe_all(
                [(0, listener.getsockname()[1]),
                 (1, healthy.server_address[1])])
            elapsed = time.monotonic() - started
        finally:
            listener.close()
            for conn in accepted:
                conn.close()
            healthy.shutdown()
            healthy.server_close()
        assert out[0] == (None, None)
        assert out[1][0] == 200
        assert out[1][1] == {"sheds": 0}
        assert elapsed < 2.0

    def test_three_misses_trip_probe_dead(self):
        supervisor = WorkerSupervisor(
            2, config=SupervisorConfig(probe_failures=3))
        slot = supervisor._slots[0]
        slot.state = "ready"
        for _ in range(3):
            supervisor._apply_probe(slot, None)
        assert slot.probe_misses == 3
        assert any(event["event"] == "probe_dead"
                   for event in supervisor.events)


class _FakeProcess:
    def __init__(self):
        self.alive = True

    def is_alive(self):
        return self.alive


class TestElasticCapacity:
    """The scale-up / scale-down state machine, driven synthetically
    (fake /statz stats; spawn stubbed out so no real processes)."""

    @staticmethod
    def _supervisor(monkeypatch, **config_overrides):
        config = SupervisorConfig(max_workers=4, pressure_polls=2,
                                  quiet_polls=2, shed_threshold=1,
                                  scale_cooldown=0.0)
        for key, value in config_overrides.items():
            setattr(config, key, value)
        supervisor = WorkerSupervisor(2, config=config)

        def fake_start(slot, reason):
            slot.state = "ready"
            slot.process = _FakeProcess()
            slot.pid = None
            supervisor._event("spawn", slot.rank, reason=reason)

        monkeypatch.setattr(supervisor, "_start_slot", fake_start)
        for slot in supervisor._slots:
            fake_start(slot, "start")
        return supervisor

    @staticmethod
    def _events(supervisor):
        return [event["event"] for event in supervisor.events]

    def test_sustained_pressure_scales_up_to_the_ceiling(
            self, monkeypatch):
        supervisor = self._supervisor(monkeypatch)
        sheds = 0
        supervisor._elastic_step(
            1.0, {0: {"sheds": sheds}, 1: {"sheds": 0}})  # baseline
        for tick in range(2, 8):
            sheds += 5
            supervisor._elastic_step(
                float(tick), {0: {"sheds": sheds}, 1: {"sheds": 0}})
        assert supervisor.pool_size == 4       # ceiling, not beyond
        assert supervisor.peak_pool_size == 4
        assert self._events(supervisor).count("scale_up") == 2

    def test_quiet_window_scales_back_down(self, monkeypatch):
        supervisor = self._supervisor(monkeypatch)
        supervisor._elastic_step(1.0, {0: {"sheds": 0}})
        supervisor._elastic_step(2.0, {0: {"sheds": 5}})
        supervisor._elastic_step(3.0, {0: {"sheds": 10}})
        assert supervisor.pool_size == 3
        scaled = [slot for slot in supervisor._slots
                  if slot.rank >= 2]
        for tick in range(4, 8):
            supervisor._elastic_step(float(tick), {0: {"sheds": 10}})
        # The newest slot drains first, and never below the base size.
        assert scaled[0].state == "retiring"
        assert supervisor.pool_size == 2
        assert "retiring" in self._events(supervisor)

    def test_restart_resets_the_shed_baseline(self, monkeypatch):
        supervisor = self._supervisor(monkeypatch)
        supervisor._elastic_step(1.0, {0: {"sheds": 50}})  # baseline
        # Counter went backwards: the worker restarted.  No phantom
        # pressure from the old cumulative count.
        supervisor._elastic_step(2.0, {0: {"sheds": 2}})
        supervisor._elastic_step(3.0, {0: {"sheds": 2}})
        supervisor._elastic_step(4.0, {0: {"sheds": 2}})
        assert supervisor.pool_size == 2
        assert "scale_up" not in self._events(supervisor)

    def test_no_ceiling_means_no_scaling(self, monkeypatch):
        supervisor = self._supervisor(monkeypatch, max_workers=None)
        for tick in range(1, 6):
            supervisor._elastic_step(
                float(tick), {0: {"sheds": tick * 10}})
        assert supervisor.pool_size == 2
        assert "scale_up" not in self._events(supervisor)
