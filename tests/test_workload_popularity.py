"""Tests for the popularity model (Figures 6-7 / section 4.1 classes)."""

import numpy as np
import pytest

from repro.workload.popularity import (
    HIGHLY_POPULAR_ABOVE,
    PopularityClass,
    PopularityModel,
    UNPOPULAR_BELOW,
    classify,
    rank_popularity_curve,
)


class TestClassify:
    def test_boundaries_match_paper_definitions(self):
        # [0, 7) unpopular; [7, 84] popular; (84, inf) highly popular.
        assert classify(0) is PopularityClass.UNPOPULAR
        assert classify(6) is PopularityClass.UNPOPULAR
        assert classify(7) is PopularityClass.POPULAR
        assert classify(84) is PopularityClass.POPULAR
        assert classify(85) is PopularityClass.HIGHLY_POPULAR
        assert classify(10000) is PopularityClass.HIGHLY_POPULAR


class TestPopularityModel:
    @pytest.fixture(scope="class")
    def demands(self):
        model = PopularityModel()
        rng = np.random.default_rng(0)
        return np.array([model.sample_weekly_demand(rng)
                         for _ in range(40000)])

    def test_demands_are_positive_integers(self, demands):
        assert demands.min() >= 1
        assert np.all(demands == demands.astype(int))

    def test_class_ranges_respected(self):
        model = PopularityModel()
        rng = np.random.default_rng(1)
        for _ in range(300):
            unpopular = model.sample_weekly_demand(
                rng, PopularityClass.UNPOPULAR)
            assert 1 <= unpopular < UNPOPULAR_BELOW
            popular = model.sample_weekly_demand(
                rng, PopularityClass.POPULAR)
            assert UNPOPULAR_BELOW <= popular <= HIGHLY_POPULAR_ABOVE
            highly = model.sample_weekly_demand(
                rng, PopularityClass.HIGHLY_POPULAR)
            assert highly > HIGHLY_POPULAR_ABOVE

    def test_file_class_shares(self, demands):
        unpopular = (demands < UNPOPULAR_BELOW).mean()
        highly = (demands > HIGHLY_POPULAR_ABOVE).mean()
        assert unpopular == pytest.approx(0.932, abs=0.01)
        assert highly == pytest.approx(0.0084, abs=0.003)

    def test_request_class_shares(self, demands):
        total = demands.sum()
        unpopular = demands[demands < UNPOPULAR_BELOW].sum() / total
        highly = demands[demands > HIGHLY_POPULAR_ABOVE].sum() / total
        assert unpopular == pytest.approx(0.36, abs=0.04)
        assert highly == pytest.approx(0.39, abs=0.06)

    def test_mean_demand_matches_real_trace(self, demands):
        # 4,084,417 tasks / 563,517 files ~= 7.25 requests per file.
        assert demands.mean() == pytest.approx(7.25, rel=0.08)

    def test_analytic_expectations_match_calibration(self):
        model = PopularityModel()
        assert model.expected_mean_demand() == pytest.approx(7.25,
                                                             rel=0.02)
        shares = model.expected_request_shares()
        assert shares[PopularityClass.UNPOPULAR] == \
            pytest.approx(0.36, abs=0.01)
        assert shares[PopularityClass.POPULAR] == \
            pytest.approx(0.25, abs=0.01)
        assert shares[PopularityClass.HIGHLY_POPULAR] == \
            pytest.approx(0.39, abs=0.01)

    def test_tail_cap_is_enforced(self):
        model = PopularityModel(max_weekly_demand=200)
        rng = np.random.default_rng(2)
        draws = [model.sample_weekly_demand(
            rng, PopularityClass.HIGHLY_POPULAR) for _ in range(500)]
        assert max(draws) <= 200

    def test_validation(self):
        with pytest.raises(ValueError):
            PopularityModel(unpopular_geom_p=0.0)
        with pytest.raises(ValueError):
            PopularityModel(highly_popular_sigma=-1.0)
        with pytest.raises(ValueError):
            PopularityModel(unpopular_file_share=0.999,
                            highly_popular_file_share=0.001)


class TestRankCurve:
    def test_rank_curve_is_sorted_descending(self):
        demands = np.array([3, 50, 1, 900, 7])
        ranks, popularity = rank_popularity_curve(demands)
        assert list(ranks) == [1, 2, 3, 4, 5]
        assert list(popularity) == [900, 50, 7, 3, 1]
