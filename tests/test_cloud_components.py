"""Tests for cloud components: database, storage pool, uploads, fetch."""

import numpy as np
import pytest

from repro.cloud import (
    CloudConfig,
    ContentDatabase,
    CloudStoragePool,
    FetchSpeedModel,
    PreDownloaderFleet,
    UploadingServers,
)
from repro.netsim.isp import ISP, MAJOR_ISPS
from repro.netsim.topology import ChinaTopology
from repro.sim.clock import gbps, kbps, mbps
from repro.transfer.protocols import Protocol
from repro.workload.catalog import FileCatalog
from repro.workload.popularity import PopularityClass
from repro.workload.records import CatalogFile
from repro.workload.filetypes import FileType


def make_file(file_id="f1", size=1e8, demand=3,
              protocol=Protocol.BITTORRENT) -> CatalogFile:
    return CatalogFile(file_id=file_id, size=size,
                       file_type=FileType.VIDEO, protocol=protocol,
                       weekly_demand=demand,
                       source_url=f"{protocol.value}://origin/{file_id}")


class TestContentDatabase:
    def test_rows_created_on_demand(self):
        db = ContentDatabase()
        assert "x" not in db
        row = db.row("x", size=10.0)
        assert "x" in db
        assert row.size == 10.0
        assert len(db) == 1

    def test_request_recording_updates_popularity(self):
        db = ContentDatabase()
        for when in range(90):
            db.record_request("x", 5.0, float(when))
        assert db.popularity_of("x") == 90
        assert db.popularity_class_of("x") is \
            PopularityClass.HIGHLY_POPULAR
        assert db.row("x").last_request_time == 89.0

    def test_unseen_file_is_unpopular(self):
        db = ContentDatabase()
        assert db.popularity_of("ghost") == 0
        assert db.popularity_class_of("ghost") is \
            PopularityClass.UNPOPULAR
        assert not db.is_cached("ghost")

    def test_attempt_accounting(self):
        db = ContentDatabase()
        db.record_attempt("x", success=True)
        db.record_attempt("x", success=False)
        row = db.row("x")
        assert row.predownload_attempts == 2
        assert row.predownload_failures == 1

    def test_cache_flag(self):
        db = ContentDatabase()
        db.set_cached("x", True)
        assert db.is_cached("x")
        db.set_cached("x", False)
        assert not db.is_cached("x")


class TestCloudStoragePool:
    def test_lookup_counts_hits_and_misses(self):
        pool = CloudStoragePool(1e9)
        record = make_file()
        assert not pool.lookup(record.file_id)
        pool.insert(record)
        assert pool.lookup(record.file_id)
        assert pool.hit_ratio == 0.5

    def test_insert_tracks_bytes(self):
        pool = CloudStoragePool(1e9)
        pool.insert(make_file(size=4e8))
        assert pool.used_bytes == 4e8
        assert len(pool) == 1

    def test_lru_eviction_under_pressure(self):
        pool = CloudStoragePool(1e9)
        first = make_file("a", size=6e8)
        second = make_file("b", size=6e8)
        pool.insert(first)
        evicted = pool.insert(second)
        assert evicted == ["a"]
        assert "a" not in pool and "b" in pool

    def test_preseed_probabilities(self):
        catalog = FileCatalog()
        catalog.generate(800, np.random.default_rng(0))
        pool = CloudStoragePool(1e15)
        seeded = pool.preseed(
            catalog,
            {PopularityClass.UNPOPULAR: 0.0,
             PopularityClass.POPULAR: 1.0,
             PopularityClass.HIGHLY_POPULAR: 1.0},
            np.random.default_rng(1))
        non_unpopular = sum(
            1 for record in catalog
            if record.popularity_class is not PopularityClass.UNPOPULAR)
        assert seeded == non_unpopular
        for record in catalog:
            expected = record.popularity_class is not \
                PopularityClass.UNPOPULAR
            assert (record.file_id in pool) == expected


class TestUploadingServers:
    def make_uploads(self, scale=1.0):
        return UploadingServers(CloudConfig(scale=scale),
                                ChinaTopology())

    def test_pools_cover_major_isps(self):
        uploads = self.make_uploads()
        assert set(uploads.pools) == set(MAJOR_ISPS)
        total = sum(pool.capacity for pool in uploads.pools.values())
        assert total == pytest.approx(gbps(30.0))

    def test_home_group_is_first_candidate(self):
        uploads = self.make_uploads()
        for isp in MAJOR_ISPS:
            candidates = uploads.candidate_groups(isp)
            assert candidates[0] is isp
            assert len(candidates) == 2

    def test_outside_users_get_two_alternatives(self):
        uploads = self.make_uploads()
        candidates = uploads.candidate_groups(ISP.OTHER)
        assert len(candidates) == 2
        assert ISP.OTHER not in candidates

    def test_privileged_selection_and_reservation(self):
        uploads = self.make_uploads()
        admitted = uploads.select_and_reserve(
            ISP.UNICOM, 0.0, lambda quality: kbps(400.0))
        assert admitted is not None
        choice, reservation, rate = admitted
        assert choice.privileged
        assert choice.server_isp is ISP.UNICOM
        assert rate == pytest.approx(kbps(400.0))
        assert uploads.pools[ISP.UNICOM].committed == rate
        reservation.release(1.0)

    def test_rate_is_capped_at_max_fetch(self):
        uploads = self.make_uploads()
        admitted = uploads.select_and_reserve(
            ISP.UNICOM, 0.0, lambda quality: gbps(1.0))
        assert admitted is not None
        _choice, _reservation, rate = admitted
        assert rate == pytest.approx(mbps(50.0))

    def test_full_home_group_overflows_cross_isp(self):
        # CERNET's pool holds ~2-3 flows at this scale; the next flow
        # must land on a cross-ISP alternative.
        uploads = self.make_uploads(scale=0.003)
        # Saturate CERNET's tiny pool.
        held = []
        while True:
            admitted = uploads.select_and_reserve(
                ISP.CERNET, 0.0, lambda quality: kbps(200.0))
            assert admitted is not None
            choice, reservation, _rate = admitted
            held.append(reservation)
            if not choice.privileged:
                assert choice.server_isp is not ISP.CERNET
                break
        assert uploads.rejected_fetches == 0

    def test_total_exhaustion_rejects(self):
        uploads = self.make_uploads(scale=1e-7)   # pools of a few KBps
        rejected = False
        for _ in range(100):
            admitted = uploads.select_and_reserve(
                ISP.UNICOM, 0.0, lambda quality: kbps(200.0))
            if admitted is None:
                rejected = True
                break
        assert rejected
        assert uploads.rejection_ratio > 0.0

    def test_binned_total_usage_aggregates_pools(self):
        uploads = self.make_uploads()
        admitted = uploads.select_and_reserve(
            ISP.MOBILE, 0.0, lambda quality: kbps(100.0))
        assert admitted is not None
        _choice, reservation, rate = admitted
        reservation.release(100.0)
        usage = uploads.binned_total_usage(bin_width=100.0,
                                           horizon=200.0)
        assert usage[0] == pytest.approx(rate)
        assert usage[1] == pytest.approx(0.0)


class TestFetchSpeedModel:
    def test_speed_bounded_by_user_bandwidth(self):
        model = FetchSpeedModel(unknown_degradation_probability=0.0)
        quality = ChinaTopology().path_quality(ISP.UNICOM, ISP.UNICOM)
        rng = np.random.default_rng(0)
        for _ in range(300):
            assert model.sample_speed(kbps(100.0), quality, rng) <= \
                kbps(100.0)

    def test_cross_isp_path_throttles(self):
        model = FetchSpeedModel(unknown_degradation_probability=0.0)
        topology = ChinaTopology()
        intra = topology.path_quality(ISP.UNICOM, ISP.UNICOM)
        cross = topology.path_quality(ISP.UNICOM, ISP.TELECOM)
        rng = np.random.default_rng(1)
        intra_speeds = [model.sample_speed(mbps(10.0), intra, rng)
                        for _ in range(500)]
        cross_speeds = [model.sample_speed(mbps(10.0), cross, rng)
                        for _ in range(500)]
        assert np.median(cross_speeds) < np.median(intra_speeds) / 3

    def test_user_bandwidth_must_be_positive(self):
        model = FetchSpeedModel()
        quality = ChinaTopology().path_quality(ISP.UNICOM, ISP.UNICOM)
        with pytest.raises(ValueError):
            model.sample_speed(0.0, quality, np.random.default_rng(2))

    def test_degradation_occurs_at_configured_rate(self):
        model = FetchSpeedModel(unknown_degradation_probability=1.0,
                                unknown_degradation_low=0.1,
                                unknown_degradation_high=0.1)
        quality = ChinaTopology().path_quality(ISP.UNICOM, ISP.UNICOM)
        rng = np.random.default_rng(3)
        base = FetchSpeedModel(unknown_degradation_probability=0.0)
        degraded = [model.sample_speed(mbps(10.0), quality, rng)
                    for _ in range(200)]
        plain = [base.sample_speed(mbps(10.0), quality,
                                   np.random.default_rng(3))
                 for _ in range(200)]
        assert np.mean(degraded) < np.mean(plain)


class TestPreDownloaderFleet:
    def test_sources_are_cached_per_file(self):
        fleet = PreDownloaderFleet(CloudConfig())
        record = make_file()
        assert fleet.source_for(record) is fleet.source_for(record)

    def test_attempt_accounting_and_traffic(self):
        fleet = PreDownloaderFleet(CloudConfig())
        record = make_file(demand=1000)   # thriving swarm: succeeds
        rng = np.random.default_rng(4)
        outcome = fleet.attempt(record, rng)
        assert fleet.attempts == 1
        assert fleet.failures == (0 if outcome.success else 1)
        assert fleet.traffic_bytes == outcome.traffic

    def test_speed_capped_at_predownloader_bandwidth(self):
        fleet = PreDownloaderFleet(CloudConfig())
        record = make_file(demand=5000, size=1e9)
        rng = np.random.default_rng(5)
        for _ in range(40):
            outcome = fleet.attempt(record, rng)
            assert outcome.average_rate <= mbps(20.0) + 1e-6

    def test_no_cache_failure_ratio_request_weighted(self):
        fleet = PreDownloaderFleet(CloudConfig())
        dead = make_file("dead", demand=0)
        hot = make_file("hot", demand=2000)
        rng = np.random.default_rng(6)
        ratio = fleet.no_cache_failure_ratio([dead] * 10 + [hot] * 10,
                                             rng)
        assert 0.4 <= ratio <= 0.6   # the dead half fails, the hot half not
        assert fleet.attempts == 0   # counterfactual leaves stats alone
