"""Tests for the P2P swarm model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfer.swarm import Swarm, SwarmModel


class TestSwarmPopulation:
    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            Swarm("f", -1.0)

    def test_seed_count_scales_with_demand(self):
        rng = np.random.default_rng(0)
        cold = Swarm("cold", 1.0)
        hot = Swarm("hot", 500.0)
        cold_seeds = np.mean([cold.sample_seed_count(rng)
                              for _ in range(500)])
        hot_seeds = np.mean([hot.sample_seed_count(rng)
                             for _ in range(500)])
        assert hot_seeds > 50 * cold_seeds

    def test_reachable_never_exceeds_seeds(self):
        swarm = Swarm("f", 10.0)
        rng = np.random.default_rng(1)
        for _ in range(200):
            seeds = swarm.sample_seed_count(rng)
            reachable = swarm.reachable_seeds(seeds, 0.5, rng)
            assert 0 <= reachable <= seeds

    def test_full_reach_keeps_all_seeds(self):
        swarm = Swarm("f", 10.0)
        rng = np.random.default_rng(2)
        assert swarm.reachable_seeds(7, 1.0, rng) == 7
        assert swarm.reachable_seeds(7, 0.0, rng) == 0

    def test_reach_validation(self):
        swarm = Swarm("f", 10.0)
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            swarm.reachable_seeds(5, 1.5, rng)


class TestAvailability:
    def test_availability_formula_matches_empirical(self):
        swarm = Swarm("f", 3.0)
        rng = np.random.default_rng(4)
        reach = 0.6
        trials = 6000
        alive = 0
        for _ in range(trials):
            seeds = swarm.sample_seed_count(rng)
            if swarm.reachable_seeds(seeds, reach, rng) > 0:
                alive += 1
        empirical = alive / trials
        assert empirical == pytest.approx(swarm.availability(reach),
                                          abs=0.025)

    def test_availability_monotone_in_demand(self):
        availabilities = [Swarm("f", demand).availability(0.5)
                          for demand in (1, 5, 20, 100)]
        assert availabilities == sorted(availabilities)

    def test_availability_monotone_in_reach(self):
        swarm = Swarm("f", 3.0)
        assert swarm.availability(0.9) > swarm.availability(0.3)

    @given(demand=st.floats(min_value=0.0, max_value=1e4),
           reach=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_availability_is_a_probability(self, demand, reach):
        assert 0.0 <= Swarm("f", demand).availability(reach) <= 1.0


class TestThroughput:
    def test_zero_seeds_zero_rate(self):
        swarm = Swarm("f", 5.0)
        rng = np.random.default_rng(5)
        assert swarm.sample_rate(0, rng) == 0.0

    def test_rate_positive_with_seeds(self):
        swarm = Swarm("f", 5.0)
        rng = np.random.default_rng(6)
        for seeds in (1, 3, 10):
            assert swarm.sample_rate(seeds, rng) > 0.0

    def test_rate_scales_weakly_with_seeds(self):
        # Popularity decides availability, not speed (see SwarmModel).
        swarm = Swarm("f", 5.0)
        rng = np.random.default_rng(7)
        one = np.median([swarm.sample_rate(1, rng) for _ in range(2000)])
        many = np.median([swarm.sample_rate(100, rng)
                          for _ in range(2000)])
        assert many > one            # more seeds never hurt
        assert many < 3.0 * one      # ...but only weakly help


class TestBandwidthMultiplier:
    def test_multiplier_grows_with_demand(self):
        small = Swarm("s", 10.0).bandwidth_multiplier(1e5)
        large = Swarm("l", 500.0).bandwidth_multiplier(1e5)
        assert large > small > 1.0

    def test_multiplier_requires_positive_seed_rate(self):
        with pytest.raises(ValueError):
            Swarm("f", 10.0).bandwidth_multiplier(0.0)

    def test_highly_popular_multiplier_makes_seeding_cheap(self):
        # A ~340-demand swarm should amortise seeding ~30x, the effect
        # behind ODR's 35% (not 39%) bandwidth saving.
        multiplier = Swarm("hot", 340.0).bandwidth_multiplier(4.5e5)
        assert 15.0 < multiplier < 50.0


class TestSwarmModel:
    def test_mean_seeds_proportional_to_demand(self):
        model = SwarmModel(seeds_per_weekly_request=0.5)
        assert model.mean_seeds(10.0) == pytest.approx(5.0)
        assert model.mean_seeds(0.0) == 0.0
