"""Integration tests for the section 6 replay evaluation."""

import pytest

from repro.core import (
    AlwaysHybridStrategy,
    AmsStrategy,
    CloudOnlyStrategy,
    OdrMiddleware,
    OdrStrategy,
    ReplayEvaluator,
    SmartApOnlyStrategy,
)
from repro.core.decision import Action


@pytest.fixture(scope="module")
def evaluator(workload, cloud):
    return ReplayEvaluator(workload.catalog, cloud.database)


@pytest.fixture(scope="module")
def odr_result(evaluator, benchmark_sample, cloud):
    strategy = OdrStrategy(OdrMiddleware(cloud.database))
    return evaluator.replay(benchmark_sample, strategy)


@pytest.fixture(scope="module")
def cloud_only_result(evaluator, benchmark_sample, cloud):
    return evaluator.replay(benchmark_sample,
                            CloudOnlyStrategy(cloud.database))


@pytest.fixture(scope="module")
def ap_only_result(evaluator, benchmark_sample):
    return evaluator.replay(benchmark_sample, SmartApOnlyStrategy())


class TestReplayShape:
    def test_one_outcome_per_request(self, odr_result, benchmark_sample):
        assert len(odr_result.outcomes) == len(benchmark_sample)

    def test_route_mix_sums_to_one(self, odr_result):
        assert sum(odr_result.route_mix().values()) == pytest.approx(1.0)

    def test_odr_uses_multiple_routes(self, odr_result):
        mix = odr_result.route_mix()
        assert mix.get("cloud", 0.0) > 0.2
        assert mix.get("smart_ap", 0.0) + \
            mix.get("user_device", 0.0) > 0.2

    def test_wan_speed_capped_by_testbed_line(self, odr_result):
        for outcome in odr_result.outcomes:
            assert outcome.wan_speed <= 2.375e6 + 1e-6

    def test_failed_outcomes_have_zero_speed_in_cdf(self, odr_result):
        cdf = odr_result.fetch_speed_cdf()
        failures = sum(1 for o in odr_result.outcomes if not o.success)
        assert cdf.probability_at_most(0.0) * len(cdf) >= failures

    def test_empty_replay_rejected(self, evaluator, cloud):
        with pytest.raises(ValueError):
            evaluator.replay([], CloudOnlyStrategy(cloud.database))


class TestBottleneckImprovements:
    """ODR vs the baselines -- the Figure 16 story."""

    def test_b1_odr_beats_cloud_only(self, odr_result,
                                     cloud_only_result):
        assert odr_result.impeded_share < \
            cloud_only_result.impeded_share

    def test_b2_odr_saves_cloud_bandwidth(self, odr_result,
                                          cloud_only_result):
        reduction = odr_result.cloud_bandwidth_reduction(
            cloud_only_result)
        assert 0.20 <= reduction <= 0.50   # paper: 35%

    def test_b3_odr_beats_ap_only_on_unpopular(self, odr_result,
                                               ap_only_result):
        assert ap_only_result.unpopular_failure_ratio > 0.25
        assert odr_result.unpopular_failure_ratio < \
            ap_only_result.unpopular_failure_ratio / 2

    def test_b4_odr_avoids_write_path_limits(self, odr_result,
                                             ap_only_result):
        assert odr_result.write_path_limited_share == 0.0
        assert ap_only_result.write_path_limited_share > 0.03

    def test_odr_fetch_speed_improves_on_cloud(self, odr_result,
                                               cloud_only_result):
        assert odr_result.fetch_speed_cdf().median > \
            cloud_only_result.fetch_speed_cdf().median

    def test_wrong_decisions_are_rare(self, odr_result):
        assert odr_result.wrong_decision_share < 0.02   # paper: <1%

    def test_ap_only_burns_no_cloud_bandwidth(self, ap_only_result,
                                              cloud_only_result):
        assert ap_only_result.cloud_bandwidth_bytes < \
            0.1 * cloud_only_result.cloud_bandwidth_bytes


class TestOtherBaselines:
    def test_always_hybrid_hits_b4(self, evaluator, benchmark_sample,
                                   cloud):
        result = evaluator.replay(benchmark_sample,
                                  AlwaysHybridStrategy(cloud.database))
        assert result.write_path_limited_share > 0.03
        mix = result.route_mix()
        assert mix.get("cloud+ap", 0.0) > 0.8

    def test_ams_ignores_b1_and_b4(self, evaluator, benchmark_sample,
                                   cloud, odr_result):
        result = evaluator.replay(benchmark_sample,
                                  AmsStrategy(cloud.database))
        assert result.write_path_limited_share > 0.0
        assert result.impeded_share >= odr_result.impeded_share
