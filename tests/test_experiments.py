"""Tests for the experiment drivers and the runner."""

import pytest

from repro.experiments import REGISTRY, default_context
from repro.experiments.base import ExperimentReport
from repro.experiments.context import ExperimentContext
from repro.experiments.runner import ORDER, render_experiments_md, run_all
from repro.paper import PaperComparison


@pytest.fixture(scope="module")
def context():
    # A small context shared by every driver test in this module.
    return ExperimentContext(scale=0.004)


class TestRegistry:
    def test_every_paper_artefact_has_a_driver(self):
        expected = {
            "workload_stats", "fig05", "fig06_07", "fig08", "fig09",
            "fig10", "fig11", "cloud_text", "table1", "fig13_14",
            "ap_failures", "table2", "fig16", "fig17",
            "backend_matrix",
        }
        assert expected == set(REGISTRY)

    def test_order_covers_registry(self):
        assert set(ORDER) == set(REGISTRY)


class TestDrivers:
    @pytest.mark.parametrize("experiment_id", sorted(
        ["workload_stats", "fig05", "fig06_07", "table1", "table2"]))
    def test_cheap_drivers_produce_reports(self, context, experiment_id):
        report = REGISTRY[experiment_id](context)
        assert isinstance(report, ExperimentReport)
        assert report.experiment_id == experiment_id
        assert report.comparisons
        rendered = report.render()
        assert report.title in rendered
        assert "paper=" in rendered

    def test_fig05_matches_size_targets(self, context):
        report = REGISTRY["fig05"](context)
        rows = {row.quantity: row for row in report.comparisons}
        assert rows["median file size (MB)"].relative_error < 0.15
        assert rows["share below 8 MB"].relative_error < 0.15

    def test_fig06_07_se_beats_zipf(self, context):
        report = REGISTRY["fig06_07"](context)
        assert report.data["se_beats_zipf"]

    def test_table2_reproduces_the_matrix(self, context):
        report = REGISTRY["table2"](context)
        matrix_rows = [row for row in report.comparisons
                       if "max speed" in row.quantity
                       and "replayed" not in row.quantity]
        assert len(matrix_rows) == 8
        for row in matrix_rows:
            assert row.relative_error < 0.05

    def test_table1_is_exact(self, context):
        report = REGISTRY["table1"](context)
        assert report.worst_relative_error() == 0.0


class TestPaperComparison:
    def test_relative_error(self):
        row = PaperComparison("q", 100.0, 90.0)
        assert row.relative_error == pytest.approx(0.1)

    def test_zero_paper_value(self):
        assert PaperComparison("q", 0.0, 0.0).relative_error == 0.0
        assert PaperComparison("q", 0.0, 1.0).relative_error == \
            float("inf")

    def test_format_row_contains_both_values(self):
        text = PaperComparison("quantity", 1.0, 2.0, "KBps").format_row()
        assert "quantity" in text and "KBps" in text


class TestContextCaching:
    def test_default_context_is_memoised(self):
        assert default_context(0.004) is default_context(0.004)
        assert default_context(0.004) is not default_context(0.0041)

    def test_workload_built_lazily_once(self, context):
        assert context.workload is context.workload


class TestRunnerRendering:
    def test_render_includes_every_report(self, context):
        reports = [REGISTRY["table1"](context),
                   REGISTRY["fig05"](context)]
        document = render_experiments_md(reports, scale=0.004)
        assert "## table1" in document and "## fig05" in document
        assert "paper vs measured" in document


class TestGracefulDegradation:
    """A broken driver becomes a failure entry; the run continues."""

    def test_run_all_survives_a_raising_driver(self, monkeypatch):
        import repro.experiments.runner as runner_module
        calls = []

        def good(ctx):
            calls.append("good")
            return ExperimentReport(experiment_id="good_exp",
                                    title="Good", comparisons=[
                                        PaperComparison(
                                            "metric", 1.0, 1.0)])

        def bad(ctx):
            raise RuntimeError("driver exploded")

        monkeypatch.setattr(runner_module, "REGISTRY",
                            {"bad_exp": bad, "good_exp": good})
        monkeypatch.setattr(runner_module, "ORDER",
                            ["bad_exp", "good_exp"])
        context = ExperimentContext(scale=0.004)
        reports = run_all(context)
        assert [r.experiment_id for r in reports] == ["good_exp"]
        assert calls == ["good"]
        assert len(context.failures) == 1
        failure = context.failures[0]
        assert failure.experiment_id == "bad_exp"
        assert "RuntimeError: driver exploded" in failure.error
        assert "driver exploded" in failure.traceback

    def test_failures_render_into_the_document(self, monkeypatch):
        from repro.experiments.context import ExperimentFailure
        failure = ExperimentFailure(
            experiment_id="fig99", error="ValueError: nope",
            traceback="Traceback ...\nValueError: nope")
        document = render_experiments_md([], scale=0.004,
                                         failures=[failure])
        assert "## fig99: FAILED" in document
        assert "ValueError: nope" in document

    def test_group_runner_collects_failures(self, monkeypatch):
        import repro.scale.runner as scale_runner
        import repro.experiments as experiments_module

        def bad(ctx):
            raise ValueError("group driver broke")

        registry = dict(experiments_module.REGISTRY)
        registry["fig05"] = bad
        monkeypatch.setattr(experiments_module, "REGISTRY", registry)
        task = scale_runner.GroupTask(group="workload", scale=0.004,
                                      seed=20150222)
        result = scale_runner.run_group(task)
        ran = [experiment_id for experiment_id, _ in result.reports]
        assert "fig05" not in ran
        assert "workload_stats" in ran and "fig06_07" in ran
        assert [f.experiment_id for f in result.failures] == ["fig05"]
        assert "group driver broke" in result.failures[0].error
