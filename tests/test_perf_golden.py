"""Golden bit-identity tests for the PR 3 hot-path optimisations.

Two directions of proof:

* every optimised surface, recomputed live, must still match the
  digests pinned from the *pre-optimisation* code
  (``tests/data/golden_digests.json``);
* the frozen baselines in :mod:`repro.perf.legacy` -- which the
  ``repro.perf`` harness times against -- must *also* match those
  digests, so the measured speedups compare two implementations of the
  same function, bit for bit.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.perf import golden, legacy
from repro.workload.generator import (
    PICK_RETRIES,
    BufferedIndexPicker,
    WorkloadConfig,
    pick_distinct_index,
)

DIGEST_FILE = Path(__file__).parent / "data" / "golden_digests.json"
PINNED = json.loads(DIGEST_FILE.read_text())


def test_every_scenario_is_pinned():
    assert sorted(PINNED) == sorted(golden.SCENARIOS)


@pytest.mark.parametrize("name", sorted(golden.SCENARIOS))
def test_live_output_matches_pinned_digest(name):
    assert golden.SCENARIOS[name]() == PINNED[name], (
        f"optimised output of {name!r} diverged from the "
        f"pre-optimisation golden digest")


# -- the frozen baselines reproduce the same digests ------------------------


def test_legacy_generator_matches_golden_workload():
    config = WorkloadConfig(scale=golden.GOLDEN_SCALE,
                            seed=golden.GOLDEN_SEED)
    workload = legacy.legacy_generate(config)
    assert golden.digest(golden.workload_payload(workload)) == \
        PINNED["workload_sequential"]


def test_legacy_engine_matches_golden_trace():
    assert golden.engine_trace(
        simulator_factory=legacy.LegacySimulator) == \
        PINNED["engine_trace"]


def test_legacy_traceio_writes_identical_bytes_and_reads_back():
    config = WorkloadConfig(scale=golden.SHARDED_SCALE,
                            seed=golden.GOLDEN_SEED)
    workload = legacy.legacy_generate(config)
    with tempfile.TemporaryDirectory() as scratch:
        plain = Path(scratch) / "requests.jsonl"
        packed = Path(scratch) / "requests.jsonl.gz"
        legacy.legacy_write_jsonl(plain, workload.requests)
        legacy.legacy_write_jsonl(packed, workload.requests)
        plain_hash = hashlib.sha256(plain.read_bytes()).hexdigest()
        packed_hash = hashlib.sha256(
            gzip.decompress(packed.read_bytes())).hexdigest()
        readback = legacy.legacy_read_jsonl(plain,
                                            type(workload.requests[0]))
    assert golden.digest([plain_hash, packed_hash]) == \
        PINNED["traceio_bytes"]
    assert readback == workload.requests


def test_legacy_topology_matches_golden_quality_table():
    from repro.netsim.isp import default_registry
    topology = legacy.LegacyTopology()
    rows = []
    for src in default_registry().isps():
        for dst in default_registry().isps():
            quality = topology.path_quality(src, dst)
            rows.append([src.value, dst.value, quality.cap_median,
                         quality.cap_sigma, quality.latency_ms,
                         quality.hops])
    assert golden.digest(rows) == PINNED["sampler_topology"]


# -- BufferedIndexPicker: bit-identical to the scalar draws -----------------


def test_buffered_picker_matches_scalar_integers_stream():
    scalar_rng = np.random.default_rng(7)
    buffered_rng = np.random.default_rng(7)
    picker = BufferedIndexPicker(1000, buffered_rng, chunk=16)
    scalar = [int(scalar_rng.integers(1000)) for _ in range(100)]
    buffered = [picker.pick() for _ in range(100)]
    assert buffered == scalar


def test_buffered_picker_distinct_matches_pick_distinct_index():
    scalar_rng = np.random.default_rng(11)
    buffered_rng = np.random.default_rng(11)
    picker = BufferedIndexPicker(5, buffered_rng, chunk=8)
    scalar_seen: set[int] = set()
    buffered_seen: set[int] = set()
    # A 5-user universe forces heavy retry traffic, exercising the
    # fall-through (give up after PICK_RETRIES) branch as well.
    scalar = [pick_distinct_index(5, scalar_seen, scalar_rng)
              for _ in range(60)]
    buffered = [picker.pick_distinct(buffered_seen) for _ in range(60)]
    assert buffered == scalar
    assert buffered_seen == scalar_seen


def test_buffered_picker_retry_budget_matches_scalar():
    # With every index already seen, both sides burn PICK_RETRIES
    # rejected draws and then return one final unconditional draw.
    scalar_rng = np.random.default_rng(13)
    buffered_rng = np.random.default_rng(13)
    seen = set(range(4))
    picker = BufferedIndexPicker(4, buffered_rng, chunk=3)
    draws = [int(scalar_rng.integers(4))
             for _ in range(PICK_RETRIES + 1)]
    assert picker.pick_distinct(set(seen)) == draws[-1]


def test_buffered_picker_rejects_empty_universe():
    with pytest.raises(ValueError):
        BufferedIndexPicker(0, np.random.default_rng(1))
