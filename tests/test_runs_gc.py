"""Tests for repro.recovery.gc and the ``repro runs gc`` CLI.

The load-bearing properties:

* only directories holding a run manifest are ever considered;
* complete runs are eligible, fresh interrupted/running runs are not,
  stale ones are;
* keep-last retains the newest eligible runs;
* the CLI defaults to a dry run and only ``--delete`` removes bytes.
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.recovery.gc import (
    DEFAULT_STALE_HOURS,
    collect,
    discover_runs,
    eligible,
    plan_gc,
)

NOW = 1_700_000_000.0


def make_run(root, name, status, age_hours, payload=2048):
    run = root / name
    (run / "checkpoints").mkdir(parents=True)
    (run / "manifest.json").write_text(json.dumps({"format": 1}))
    (run / "state.json").write_text(json.dumps({"status": status}))
    (run / "checkpoints" / "data.pkl").write_bytes(b"x" * payload)
    stamp = NOW - age_hours * 3600.0
    for file in ("manifest.json", "state.json"):
        os.utime(run / file, (stamp, stamp))
    return run


class TestDiscovery:
    def test_only_manifested_dirs_count(self, tmp_path):
        make_run(tmp_path, "real", "complete", 1.0)
        (tmp_path / "not-a-run").mkdir()
        (tmp_path / "loose-file.json").write_text("{}")
        runs = discover_runs(tmp_path)
        assert [run.path.name for run in runs] == ["real"]
        assert runs[0].status == "complete"
        assert runs[0].bytes > 2048

    def test_missing_root_is_empty(self, tmp_path):
        assert discover_runs(tmp_path / "nowhere") == []


class TestEligibility:
    def test_complete_always_eligible(self, tmp_path):
        make_run(tmp_path, "done", "complete", 0.0)
        run = discover_runs(tmp_path)[0]
        assert eligible(run, NOW)

    def test_fresh_interrupted_is_protected(self, tmp_path):
        make_run(tmp_path, "resumable", "interrupted", 1.0)
        run = discover_runs(tmp_path)[0]
        assert not eligible(run, NOW)
        assert eligible(run, NOW + DEFAULT_STALE_HOURS * 3600.0)

    def test_stale_failed_is_eligible(self, tmp_path):
        make_run(tmp_path, "old-failure", "failed", 100.0)
        run = discover_runs(tmp_path)[0]
        assert eligible(run, NOW)


class TestPlan:
    def test_keep_last_retains_newest(self, tmp_path):
        for index, age in enumerate([50.0, 30.0, 10.0, 5.0]):
            make_run(tmp_path, f"run{index}", "complete", age)
        runs = discover_runs(tmp_path)
        kept, doomed = plan_gc(runs, keep_last=2, now=NOW)
        assert sorted(run.path.name for run in kept) \
            == ["run2", "run3"]
        assert sorted(run.path.name for run in doomed) \
            == ["run0", "run1"]

    def test_ineligible_never_doomed(self, tmp_path):
        make_run(tmp_path, "fresh", "interrupted", 1.0)
        make_run(tmp_path, "old", "complete", 50.0)
        runs = discover_runs(tmp_path)
        kept, doomed = plan_gc(runs, keep_last=0, now=NOW)
        assert [run.path.name for run in doomed] == ["old"]
        assert [run.path.name for run in kept] == ["fresh"]

    def test_negative_keep_last_rejected(self):
        with pytest.raises(ValueError):
            plan_gc([], keep_last=-1)

    def test_collect_dry_run_deletes_nothing(self, tmp_path):
        make_run(tmp_path, "victim", "complete", 10.0)
        runs = discover_runs(tmp_path)
        reclaimed = collect(runs, delete=False)
        assert reclaimed > 0
        assert (tmp_path / "victim").exists()
        collect(runs, delete=True)
        assert not (tmp_path / "victim").exists()


class TestCLI:
    def run_cli(self, *argv):
        return cli_main(["runs", "gc", *argv])

    def test_dry_run_by_default(self, tmp_path, capsys):
        # Complete runs are eligible at any age, so the fixed NOW
        # stamps work against the CLI's real clock too.
        make_run(tmp_path, "a", "complete", 0.0)
        make_run(tmp_path, "b", "complete", 0.0)
        status = self.run_cli("--root", str(tmp_path),
                              "--keep-last", "1")
        out = capsys.readouterr().out
        assert status == 0
        assert "would delete" in out
        assert (tmp_path / "a").exists() and (tmp_path / "b").exists()

    def test_delete_reclaims(self, tmp_path, capsys):
        make_run(tmp_path, "a", "complete", 0.0)
        make_run(tmp_path, "b", "complete", 0.0)
        status = self.run_cli("--root", str(tmp_path),
                              "--keep-last", "1", "--delete")
        out = capsys.readouterr().out
        assert status == 0
        assert "delete" in out
        survivors = [p.name for p in tmp_path.iterdir()]
        assert len(survivors) == 1

    def test_empty_root(self, tmp_path, capsys):
        status = self.run_cli("--root", str(tmp_path / "none"))
        assert status == 0
        assert "no run directories" in capsys.readouterr().out
