"""Tests for the discrete-event engine."""

import pytest

from repro.sim import (
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.engine import Event


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_call_in_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.call_in(3.0, fired.append, "c")
        sim.call_in(1.0, fired.append, "a")
        sim.call_in(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fires_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.call_at(1.0, fired.append, tag)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_call_at_in_the_past_is_rejected(self):
        sim = Simulator()
        sim.call_in(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_run_until_stops_clock_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.call_at(10.0, fired.append, "late")
        end = sim.run(until=4.0)
        assert end == 4.0
        assert fired == []
        sim.run()
        assert fired == ["late"]

    def test_run_until_advances_clock_when_queue_is_empty(self):
        sim = Simulator()
        assert sim.run(until=42.0) == 42.0
        assert sim.now == 42.0

    def test_callbacks_can_schedule_more_callbacks(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.call_in(1.0, chain, depth + 1)

        sim.call_in(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestProcesses:
    def test_timeout_advances_clock(self):
        sim = Simulator()

        def proc():
            yield Timeout(5.0)
            return sim.now

        process = sim.process(proc())
        sim.run()
        assert process.result == 5.0

    def test_timeout_carries_value(self):
        sim = Simulator()

        def proc():
            value = yield Timeout(1.0, value="ping")
            return value

        process = sim.process(proc())
        sim.run()
        assert process.result == "ping"

    def test_negative_timeout_is_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_process_waits_on_another_process(self):
        sim = Simulator()

        def child():
            yield Timeout(3.0)
            return "payload"

        def parent():
            value = yield sim.process(child())
            return value, sim.now

        process = sim.process(parent())
        sim.run()
        assert process.result == ("payload", 3.0)

    def test_waiting_on_finished_process_resumes_immediately(self):
        sim = Simulator()

        def child():
            yield Timeout(1.0)
            return 99

        child_process = sim.process(child())

        def parent():
            yield Timeout(5.0)
            value = yield child_process
            return value

        parent_process = sim.process(parent())
        sim.run()
        assert parent_process.result == 99
        assert sim.now == 5.0

    def test_child_exception_propagates_to_waiter(self):
        sim = Simulator()

        def child():
            yield Timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return f"caught {exc}"

        process = sim.process(parent())
        sim.run()
        assert process.result == "caught boom"

    def test_unhandled_process_error_surfaces_in_run(self):
        sim = Simulator()

        def bad():
            yield Timeout(1.0)
            raise RuntimeError("unobserved")

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_result_before_completion_raises(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        process = sim.process(proc())
        with pytest.raises(SimulationError):
            _ = process.result

    def test_yielding_garbage_fails_the_process(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_requires_generator(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)  # type: ignore[arg-type]

    def test_interrupt_raises_inside_process(self):
        sim = Simulator()

        def sleeper():
            try:
                yield Timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)
            return "slept"

        process = sim.process(sleeper())
        sim.call_at(2.0, process.interrupt, "wake")
        sim.run()
        assert process.result == ("interrupted", "wake", 2.0)

    def test_interrupt_after_completion_is_noop(self):
        sim = Simulator()

        def quick():
            yield Timeout(1.0)
            return "done"

        process = sim.process(quick())
        sim.run()
        process.interrupt("late")
        sim.run()
        assert process.result == "done"

    def test_run_all_returns_results_in_order(self):
        sim = Simulator()

        def proc(delay, tag):
            yield Timeout(delay)
            return tag

        results = sim.run_all([proc(3, "a"), proc(1, "b"), proc(2, "c")])
        assert results == ["a", "b", "c"]


class TestEvents:
    def test_event_resumes_waiters_with_value(self):
        sim = Simulator()
        event = sim.event()

        def waiter():
            value = yield event
            return value, sim.now

        process = sim.process(waiter())
        sim.call_at(7.0, event.trigger, "signal")
        sim.run()
        assert process.result == ("signal", 7.0)

    def test_event_triggers_multiple_waiters(self):
        sim = Simulator()
        event = sim.event()

        def waiter():
            return (yield event)

        processes = [sim.process(waiter()) for _ in range(3)]
        sim.call_at(1.0, event.trigger, 5)
        sim.run()
        assert [p.result for p in processes] == [5, 5, 5]

    def test_waiting_on_already_triggered_event(self):
        sim = Simulator()
        event = sim.event()
        event.trigger("early")

        def waiter():
            return (yield event)

        process = sim.process(waiter())
        sim.run()
        assert process.result == "early"

    def test_double_trigger_is_an_error(self):
        sim = Simulator()
        event = sim.event(name="once")
        event.trigger()
        with pytest.raises(SimulationError):
            event.trigger()

    def test_value_before_trigger_is_an_error(self):
        sim = Simulator()
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value
        event.trigger(3)
        assert event.value == 3
        assert event.triggered


class TestWaiterCancellation:
    """The O(1) waiter-cancellation bookkeeping (PR 3 fast path)."""

    def test_interrupted_waiter_detaches_from_event(self):
        sim = Simulator()
        gate = sim.event("gate")

        def waiter():
            try:
                yield gate
            except Interrupt:
                return "interrupted"
            return "leaked"

        process = sim.process(waiter())
        sim.call_at(1.0, process.interrupt)
        sim.run(until=1.5)
        assert not gate._waiters, "cancelled waiter left behind"
        sim.call_at(2.0, gate.trigger, "go")
        sim.run()
        assert process.result == "interrupted"

    def test_mass_cancellation_leaves_no_waiters(self):
        # The pre-optimisation list bookkeeping made this quadratic
        # (one list.remove per interrupt); the dict keeps it O(1) and,
        # more importantly here, must leave the event genuinely empty.
        sim = Simulator()
        gate = sim.event("gate")
        outcomes = []

        def member(tag):
            try:
                yield gate
                outcomes.append((tag, "resumed"))
            except Interrupt:
                outcomes.append((tag, "cancelled"))

        processes = [sim.process(member(i)) for i in range(100)]

        def cancel_all():
            yield Timeout(1.0)
            for process in processes:
                process.interrupt()

        sim.process(cancel_all())
        sim.call_at(2.0, gate.trigger, None)
        sim.run()
        assert not gate._waiters
        assert sorted(outcomes) == [(i, "cancelled") for i in range(100)]

    def test_partial_cancellation_preserves_resume_order(self):
        # Cancelling some waiters must not disturb the registration
        # order in which the survivors resume on trigger.
        sim = Simulator()
        gate = sim.event("gate")
        resumed = []

        def waiter(tag):
            try:
                yield gate
                resumed.append(tag)
            except Interrupt:
                pass

        processes = [sim.process(waiter(i)) for i in range(6)]
        sim.call_at(1.0, processes[1].interrupt)
        sim.call_at(1.0, processes[4].interrupt)
        sim.call_at(2.0, gate.trigger, None)
        sim.run()
        assert resumed == [0, 2, 3, 5]

    def test_interrupted_waiter_detaches_from_process(self):
        # Waiting on a *process* uses the same dict bookkeeping; the
        # target finishing later must not resume the cancelled waiter.
        sim = Simulator()

        def sleeper():
            yield Timeout(5.0)
            return "slept"

        target = sim.process(sleeper())

        def waiter():
            try:
                yield target
            except Interrupt:
                return "interrupted"
            return "leaked"

        process = sim.process(waiter())
        sim.call_at(1.0, process.interrupt)
        final = sim.run()
        assert process.result == "interrupted"
        assert not target._waiters
        assert target.result == "slept"
        assert final == 5.0

    def test_remove_waiter_of_stranger_is_noop(self):
        sim = Simulator()
        gate = sim.event("gate")

        def waiter():
            yield gate

        process = sim.process(waiter())
        sim.run(until=0.5)
        stranger = Process(sim, waiter())
        gate._remove_waiter(stranger)      # not registered: must not raise
        assert list(gate._waiters.values()) == [process]


class TestInterruptStaleness:
    """The token-capture contract: an interrupt (or resume) only lands
    in the wait it was aimed at -- never in a later one."""

    def test_interrupt_scheduled_with_resume_is_dropped_when_stale(self):
        # A waiter's event fires and an interrupt is scheduled at the
        # SAME timestamp, after the resume.  By the time the interrupt
        # callback runs, the process has moved into its next wait; the
        # stale interrupt must not leak into it.
        sim = Simulator()
        gate = sim.event("gate")

        def waiter():
            value = yield gate
            try:
                yield Timeout(10.0)
            except Interrupt:
                return "stale interrupt leaked"
            return ("clean", value)

        process = sim.process(waiter())

        def fire_then_interrupt():
            gate.trigger("payload")        # schedules the resume first
            process.interrupt()            # aimed at the gate wait only
        sim.call_at(1.0, fire_then_interrupt)
        sim.run()
        assert process.result == ("clean", "payload")

    def test_interrupt_during_resume_of_process_wait(self):
        # Same staleness rule for a process-on-process wait.  The
        # saboteur's timeout is scheduled *after* the child's, so at
        # t=1 the heap order is: child completes (queueing parent's
        # resume), saboteur interrupts, resume fires, stale throw is
        # dropped.
        sim = Simulator()

        def child():
            yield Timeout(1.0)
            return "done"

        def parent(target):
            value = yield target
            try:
                yield Timeout(5.0)
            except Interrupt:
                return "stale"
            return value

        def saboteur(victim):
            yield Timeout(1.0)
            victim.interrupt()

        target = sim.process(child())
        process = sim.process(parent(target))
        sim.process(saboteur(process))
        sim.run()
        assert process.result == "done"

    def test_mass_interrupt_cancels_only_live_waiters(self):
        # Of many processes parked on one event, half are interrupted
        # before the trigger; the interrupt must detach exactly those,
        # and the survivors resume normally.
        sim = Simulator()
        gate = sim.event("gate")
        outcomes = {}

        def waiter(name):
            try:
                value = yield gate
            except Interrupt:
                outcomes[name] = "interrupted"
                return None
            outcomes[name] = value
            return value

        processes = [sim.process(waiter(i), name=f"w{i}")
                     for i in range(10)]

        def cull():
            for process in processes[::2]:
                process.interrupt()
        sim.call_at(1.0, cull)
        sim.call_at(2.0, gate.trigger, "open")
        sim.run()
        assert [outcomes[i] for i in range(0, 10, 2)] == \
            ["interrupted"] * 5
        assert [outcomes[i] for i in range(1, 10, 2)] == ["open"] * 5
        assert not gate._waiters

    def test_seeded_interrupt_storm_is_bit_identical(self):
        # A chaos-style storm: processes sleep staggered amounts, a
        # culler interrupts a seeded subset at seeded times; retries
        # re-enter sleep.  Two runs with one seed must match exactly.
        from repro.sim.randomness import substream

        def storm(seed):
            sim = Simulator()
            rng = substream(seed, "storm")
            trace = []

            def worker(name, duration):
                attempts = 0
                while True:
                    attempts += 1
                    try:
                        yield Timeout(duration)
                    except Interrupt:
                        trace.append((name, attempts, "hit", sim.now))
                        continue
                    trace.append((name, attempts, "ok", sim.now))
                    return attempts

            processes = [
                sim.process(worker(i, 1.0 + float(rng.random())),
                            name=f"s{i}")
                for i in range(20)]
            for process in rng.choice(processes, size=30):
                sim.call_at(float(rng.random()) * 2.0,
                            process.interrupt)
            sim.run()
            return trace

        assert storm(7) == storm(7)
        assert storm(7) != storm(8)


class TestSameInstantDispatchOrder:
    """The batched immediate queue vs the plain time-ordered heap.

    The live engine drains same-timestamp events through a FIFO and
    merges in heap entries that share the current timestamp by sequence
    number; the frozen pre-batching engine (``Pr3Simulator``) orders
    everything through one heap.  Both must fire an adversarial
    same-instant storm in exactly the same global order.
    """

    def _storm(self, make_sim):
        sim = make_sim()
        log = []

        def leaf(tag):
            log.append((sim.now, tag))

        def burst(round_index):
            log.append((sim.now, f"burst-{round_index}"))
            # Immediates queued during the drain...
            for i in range(3):
                sim.call_in(0.0, leaf, f"r{round_index}-imm{i}")
            # ...a call_at aimed at the *current* instant (joins the
            # immediate queue, after the ones above)...
            sim.call_at(sim.now, leaf, f"r{round_index}-at-now")
            if round_index > 0:
                # ...and two entries for the *next* instant: the next
                # burst (lower seq) plus a timer landing at the same
                # timestamp from the heap (higher seq).  The heap entry
                # must fire after the burst but interleaved correctly
                # with the immediates the burst enqueues.
                sim.call_in(1.0, burst, round_index - 1)
                sim.call_at(sim.now + 1.0, leaf,
                            f"r{round_index}-timer")
                sim.call_in(1.0, leaf, f"r{round_index}-late-timer")

        # Heap ballast scheduled before the clock moves: entries at
        # t=1.0 with sequence numbers *below* everything the burst at
        # t=1.0 creates, so they must fire first at that instant.
        sim.call_at(1.0, leaf, "pre-seeded-a")
        sim.call_in(1.0, burst, 3)
        sim.call_at(1.0, leaf, "pre-seeded-b")
        sim.run()
        return log

    def test_storm_order_matches_pre_batching_engine(self):
        from repro.perf.pr3 import Pr3Simulator
        live = self._storm(Simulator)
        frozen = self._storm(Pr3Simulator)
        assert live == frozen
        # The storm actually exercised same-instant contention: several
        # distinct tags fired at the same timestamps.
        times = [when for when, _tag in live]
        assert len(times) > len(set(times))

    def test_storm_interleaves_heap_entries_by_sequence(self):
        log = self._storm(Simulator)
        by_time: dict = {}
        for when, tag in log:
            by_time.setdefault(when, []).append(tag)
        # At t=1.0: pre-seeded heap entries (lowest seqs) fire before
        # the burst, which fires before the immediates it enqueued.
        first = by_time[1.0]
        assert first[:3] == ["pre-seeded-a", "burst-3", "pre-seeded-b"]
        assert first.index("burst-3") < first.index("r3-imm0")
        # At t=2.0: the next burst (scheduled first) precedes the
        # same-instant heap timer, which precedes the later call_in.
        second = by_time[2.0]
        assert second.index("burst-2") < second.index("r3-timer")
        assert second.index("r3-timer") < second.index("r3-late-timer")
