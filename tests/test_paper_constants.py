"""Sanity checks on the published-constants module itself."""

import pytest

from repro import paper
from repro.sim.clock import gbps, kbps, mbps


class TestInternalConsistency:
    def test_impeded_breakdown_sums_to_the_total(self):
        # 9.6 + 10.8 + 1.5 + 6.1 = 28 (section 4.2).
        total = (paper.IMPEDED_BY_ISP_BARRIER +
                 paper.IMPEDED_BY_LOW_ACCESS_BW +
                 paper.IMPEDED_BY_REJECTION + paper.IMPEDED_UNKNOWN)
        assert total == pytest.approx(paper.IMPEDED_FETCH_SHARE)

    def test_ap_failure_causes_sum_to_one(self):
        assert paper.AP_FAILURE_CAUSE_SEEDS + \
            paper.AP_FAILURE_CAUSE_SERVER + \
            paper.AP_FAILURE_CAUSE_BUG == pytest.approx(1.0)

    def test_class_definitions_are_ordered(self):
        assert 0 < paper.UNPOPULAR_MAX_WEEKLY < \
            paper.POPULAR_MAX_WEEKLY

    def test_trace_dimensions(self):
        # ~7.25 requests per file, ~5.2 per user.
        assert paper.TOTAL_TASKS / paper.TOTAL_UNIQUE_FILES == \
            pytest.approx(7.25, abs=0.05)
        assert paper.TOTAL_TASKS / paper.TOTAL_USERS == \
            pytest.approx(5.2, abs=0.1)

    def test_unit_conversions_used_in_constants(self):
        assert paper.PREDOWNLOADER_BANDWIDTH == pytest.approx(2.5e6)
        assert paper.IMPEDED_FETCH_THRESHOLD == pytest.approx(kbps(125))
        assert paper.CLOUD_UPLOAD_CAPACITY == pytest.approx(gbps(30))

    def test_odr_improvement_directions(self):
        assert paper.ODR_IMPEDED_FETCH_SHARE < paper.IMPEDED_FETCH_SHARE
        assert paper.ODR_UNPOPULAR_FAILURE_RATIO < \
            paper.AP_UNPOPULAR_FAILURE_RATIO
        assert paper.ODR_PEAK_BURDEN < paper.CLOUD_PEAK_BURDEN
        assert paper.ODR_FETCH_SPEED_MEDIAN > paper.FETCH_SPEED_MEDIAN
