"""The columnar trace format (:mod:`repro.traceio`).

Three layers of proof:

* **Round-trips.**  For every pinned record type, a columnar write/read
  cycle returns records equal to the originals -- and equal to what the
  JSONL path returns for the same rows -- under both the memory-mapped
  and the buffered reader.
* **Structure.**  Wrong record type, truncated files and random-access
  ``take`` behave as documented.
* **Golden replays.**  A cloud replay driven from a workload saved and
  re-loaded in columnar form, and a sharded (``jobs=2``) zero-copy AP
  replay fed row indices into a memory-mapped ``.col`` trace, both
  reproduce the pinned pre-optimisation golden digests bit for bit.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf import golden
from repro.traceio import (
    ColumnarFormatError,
    ColumnarTrace,
    is_columnar,
    read_columnar,
    write_columnar,
)
from repro.traceio.columnar import RECORD_TYPES
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.records import (
    FetchRecord,
    PreDownloadRecord,
    RequestRecord,
    User,
)
from repro.workload.traceio import (
    load_workload,
    read_jsonl,
    save_workload,
    write_jsonl,
)

DIGEST_FILE = Path(__file__).parent / "data" / "golden_digests.json"
PINNED = json.loads(DIGEST_FILE.read_text())


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(scale=golden.GOLDEN_SCALE,
                            seed=golden.GOLDEN_SEED)
    return WorkloadGenerator(config).generate()


@pytest.fixture(scope="module")
def cloud_result(workload):
    from repro.cloud import CloudConfig, XuanfengCloud
    return XuanfengCloud(
        CloudConfig(scale=golden.GOLDEN_SCALE)).run(workload)


@pytest.fixture(scope="module")
def records_by_type(workload, cloud_result):
    """Real rows of every pinned record type, from one golden replay."""
    return {
        "CatalogFile": list(workload.catalog),
        "User": list(workload.users),
        "RequestRecord": list(workload.requests),
        "PreDownloadRecord": [task.pre_record
                              for task in cloud_result.tasks],
        "FetchRecord": [task.fetch_record for task in cloud_result.tasks
                        if task.fetch_record is not None],
    }


# -- round-trips ------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(RECORD_TYPES))
def test_columnar_roundtrip_matches_jsonl(name, records_by_type, tmp_path):
    record_type = RECORD_TYPES[name]
    records = records_by_type[name]
    assert records, f"fixture produced no {name} rows"

    col_path = tmp_path / f"{name}.col"
    jsonl_path = tmp_path / f"{name}.jsonl"
    write_columnar(col_path, records, record_type)
    write_jsonl(jsonl_path, iter(records))

    mapped = read_columnar(col_path, record_type)
    buffered = read_columnar(col_path, record_type, mmap=False)
    via_jsonl = read_jsonl(jsonl_path, record_type)

    assert mapped == records
    assert buffered == records
    assert via_jsonl == records
    assert [r.to_dict() for r in mapped] == \
        [r.to_dict() for r in via_jsonl]


def test_optional_fields_roundtrip_none_and_values(tmp_path):
    # Exercise the null masks deterministically: optional floats
    # (access_bandwidth) and optional strings (failure_cause) both as
    # None and as values, in one column each.
    fetches = [
        FetchRecord("t1", "u1", "1.2.3.4", None, 0.0, 9.5,
                    100.0, 107.0, 10.0, 12.0, False),
        FetchRecord("t2", "u2", "5.6.7.8", 2.0e6, 1.0, 1.0,
                    0.0, 0.0, 0.0, 0.0, True),
    ]
    pres = [
        PreDownloadRecord("t1", "f1", 0.0, 3.0, 50.0, 55.0, False,
                          16.0, 20.0, True, None),
        PreDownloadRecord("t2", "f2", 1.0, 4.0, 0.0, 10.0, False,
                          0.0, 0.0, False, "source-dried-up"),
    ]
    for records, record_type in ((fetches, FetchRecord),
                                 (pres, PreDownloadRecord)):
        path = tmp_path / f"{record_type.__name__}.col"
        write_columnar(path, records, record_type)
        assert read_columnar(path, record_type) == records
        assert read_columnar(path, record_type, mmap=False) == records


# -- structural behaviour ---------------------------------------------------


def test_record_type_mismatch_raises(workload, tmp_path):
    path = tmp_path / "requests.col"
    write_columnar(path, workload.requests[:4], RequestRecord)
    with pytest.raises(ColumnarFormatError):
        read_columnar(path, User)


def test_is_columnar_detects_format(workload, tmp_path):
    col_path = tmp_path / "requests.col"
    jsonl_path = tmp_path / "requests.jsonl"
    write_columnar(col_path, workload.requests[:4], RequestRecord)
    write_jsonl(jsonl_path, iter(workload.requests[:4]))
    assert is_columnar(col_path)
    assert not is_columnar(jsonl_path)


def test_truncated_file_raises(workload, tmp_path):
    path = tmp_path / "requests.col"
    write_columnar(path, workload.requests[:16], RequestRecord)
    data = path.read_bytes()
    path.write_bytes(data[:len(data) // 2])
    with pytest.raises(ColumnarFormatError):
        ColumnarTrace(path).materialize()


def test_take_decodes_selected_rows_in_order(workload, tmp_path):
    records = workload.requests[:10]
    path = tmp_path / "requests.col"
    write_columnar(path, records, RequestRecord)
    trace = ColumnarTrace(path)
    assert len(trace) == len(records)
    assert trace.take([7, 0, 7, 3]) == \
        [records[7], records[0], records[7], records[3]]
    assert trace.materialize(2, 5) == records[2:5]


# -- golden replays from columnar traces ------------------------------------


def test_cloud_replay_from_columnar_workload_matches_golden(
        workload, tmp_path):
    """Save columnar -> load -> replay == the pinned JSONL-era digest."""
    from repro.cloud import CloudConfig, XuanfengCloud
    save_workload(workload, tmp_path, trace_format="columnar")
    loaded = load_workload(tmp_path, trace_format="columnar")
    result = XuanfengCloud(
        CloudConfig(scale=golden.GOLDEN_SCALE)).run(loaded)
    assert golden.digest(golden.cloud_payload(result)) == \
        PINNED["cloud_replay"]


def test_sharded_ap_replay_from_mapped_trace_matches_golden(
        workload, tmp_path):
    """Zero-copy sharded AP replay (``jobs=2``) == the pinned digest.

    The workers receive ``(path, row indices)`` into a shared columnar
    trace, memory-map it, and decode only their own rows; the merged
    report must still match the sequential golden replay bit for bit.
    """
    from repro.scale.pipelines import sharded_ap_replay
    from repro.workload import sample_benchmark_requests
    sample = sample_benchmark_requests(workload, 200)
    trace_path = tmp_path / "sample.col"
    write_columnar(trace_path, sample, RequestRecord)
    report, info = sharded_ap_replay(
        workload.catalog, sample, jobs=2,
        requests_trace=(trace_path, list(range(len(sample)))))
    assert golden.digest(golden.ap_payload(report.results)) == \
        PINNED["ap_replay"]
    assert info.jobs == 2
