"""Integration tests for the full cloud system run."""

import pytest

from repro.paper import IMPEDED_FETCH_THRESHOLD
from repro.sim.clock import mbps
from repro.workload.popularity import PopularityClass


class TestRunShape:
    def test_one_task_result_per_request(self, workload, cloud_result):
        assert len(cloud_result.tasks) == len(workload.requests)

    def test_every_successful_predownload_gets_a_fetch(self,
                                                       cloud_result):
        for task in cloud_result.tasks:
            if task.pre_record.success:
                assert task.fetch_record is not None
            else:
                assert task.fetch_record is None

    def test_cache_hits_have_zero_predownload_delay(self, cloud_result):
        instant = [task for task in cloud_result.tasks
                   if task.pre_record.cache_hit
                   and task.pre_record.delay == 0.0]
        assert len(instant) > 0.5 * len(cloud_result.tasks)

    def test_fetch_follows_predownload_in_time(self, cloud_result):
        for task in cloud_result.tasks[:500]:
            if task.fetch_record is not None:
                assert task.fetch_record.start_time >= \
                    task.pre_record.finish_time

    def test_e2e_delay_is_sum_of_stages(self, cloud_result):
        for task in cloud_result.tasks[:500]:
            delay = task.end_to_end_delay
            if delay is not None:
                assert delay == pytest.approx(
                    task.pre_record.delay + task.fetch_record.delay)

    def test_speeds_within_physical_caps(self, cloud_result):
        for record in cloud_result.pre_records[:1000]:
            assert record.average_speed <= mbps(20.0) + 1e-6
        for record in cloud_result.fetch_records[:1000]:
            assert record.average_speed <= mbps(50.0) + 1e-6


class TestHeadlineStatistics:
    """Calibration bands: the paper's section 4 numbers, with tolerance
    for the reduced scale and the documented cache-semantics compromise.
    """

    def test_cache_hit_ratio_near_89_percent(self, cloud_result):
        assert 0.84 <= cloud_result.cache_hit_ratio <= 0.93

    def test_request_failure_ratio_band(self, cloud_result):
        assert 0.01 <= cloud_result.request_failure_ratio <= 0.09

    def test_unpopular_files_fail_most(self, cloud_result):
        by_class = cloud_result.failure_ratio_by_class()
        assert by_class[PopularityClass.UNPOPULAR] > \
            5 * by_class.get(PopularityClass.HIGHLY_POPULAR, 0.0) or \
            by_class[PopularityClass.UNPOPULAR] > 0.04

    def test_attempt_speed_distribution_shape(self, cloud_result):
        cdf = cloud_result.attempt_speed_cdf()
        # Median around the paper's 25 KBps, mean around 69 KBps.
        assert 8e3 <= cdf.median <= 45e3
        assert 30e3 <= cdf.mean <= 100e3

    def test_fetch_is_an_order_of_magnitude_faster(self, cloud_result):
        pre = cloud_result.attempt_speed_cdf()
        fetch = cloud_result.fetch_speed_cdf()
        assert fetch.median > 5 * pre.median
        assert fetch.mean > 4 * pre.mean

    def test_impeded_share_band(self, cloud_result):
        assert 0.20 <= cloud_result.impeded_fetch_share <= 0.45

    def test_impeded_breakdown_sums_to_impeded_share(self, cloud_result):
        breakdown = cloud_result.impeded_breakdown()
        assert sum(breakdown.values()) == pytest.approx(
            cloud_result.impeded_fetch_share, abs=1e-9)

    def test_traffic_overheads(self, cloud_result):
        assert 1.6 <= cloud_result.fleet.traffic_overhead <= 2.3
        assert 1.06 <= cloud_result.user_traffic_overhead() <= 1.11

    def test_e2e_tracks_fetch_distribution(self, cloud_result):
        # 89% cache hits make end-to-end look like fetch (section 4.3).
        fetch = cloud_result.fetch_delay_cdf()
        e2e = cloud_result.e2e_delay_cdf()
        pre = cloud_result.attempt_delay_cdf()
        assert abs(e2e.median - fetch.median) < \
            abs(e2e.median - pre.median)


class TestBandwidthAccounting:
    def test_flows_cover_all_fetches(self, cloud_result):
        fetches = [task for task in cloud_result.tasks
                   if task.fetch_record is not None]
        assert len(cloud_result.flows) == len(fetches)

    def test_bandwidth_series_nonnegative(self, cloud_result):
        series = cloud_result.bandwidth_series()
        assert (series >= 0).all()
        assert series.max() > 0

    def test_highly_popular_series_is_a_subset(self, cloud_result):
        total = cloud_result.bandwidth_series()
        highly = cloud_result.bandwidth_series(only_highly_popular=True)
        assert (highly <= total + 1e-6).all()
        share = highly.sum() / total.sum()
        assert 0.25 <= share <= 0.55     # paper: ~40%

    def test_rejected_demand_can_be_excluded(self, cloud_result):
        with_rejected = cloud_result.bandwidth_series()
        without = cloud_result.bandwidth_series(include_rejected=False)
        assert without.sum() <= with_rejected.sum() + 1e-6

    def test_committed_bandwidth_respects_capacity(self, cloud_result):
        for pool in cloud_result.uploads.pools.values():
            assert pool.peak_committed <= pool.capacity + 1e-6

    def test_failure_by_demand_is_fig10_shaped(self, cloud_result):
        scatter = dict(cloud_result.failure_ratio_by_demand())
        low = [ratio for demand, ratio in scatter.items() if demand < 7]
        high = [ratio for demand, ratio in scatter.items()
                if demand > 84]
        if low and high:
            assert max(high) <= max(low)


class TestImpededThreshold:
    def test_threshold_is_1mbps(self):
        assert IMPEDED_FETCH_THRESHOLD == pytest.approx(125e3)


class TestFastPathEquivalence:
    """The table-driven task machine vs the generator coroutines.

    The golden digests already pin the fast path to the frozen
    pre-optimisation output; this compares the two *live* execution
    models directly, so a divergence is attributed to the right layer
    even if both drift from the pinned digest together.
    """

    def test_state_machine_matches_generator_path(self, workload):
        from repro.cloud import CloudConfig, XuanfengCloud
        from repro.perf.golden import cloud_payload
        from tests.conftest import TEST_SCALE

        fast = XuanfengCloud(CloudConfig(scale=TEST_SCALE)).run(workload)
        slow = XuanfengCloud(CloudConfig(scale=TEST_SCALE),
                             fast_tasks=False).run(workload)
        assert cloud_payload(fast) == cloud_payload(slow)
