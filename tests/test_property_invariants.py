"""Cross-cutting property-based tests on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.database import ContentDatabase
from repro.core import OdrMiddleware, UserContext
from repro.core.decision import Action, DataSource
from repro.netsim.ip import IpAllocator
from repro.netsim.isp import ISP
from repro.sim import Simulator, Timeout
from repro.transfer.protocols import Protocol
from repro.transfer.session import DownloadSession, SessionLimits
from repro.transfer.source import HOME_VANTAGE, SourceModel

ALLOCATOR = IpAllocator()
IPS = {isp: ALLOCATOR.allocate(isp) for isp in ISP}


class TestEngineProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6),
                           min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_all_processes_complete_and_time_is_their_max(self, delays):
        sim = Simulator()

        def sleeper(delay):
            yield Timeout(delay)
            return delay

        processes = [sim.process(sleeper(d)) for d in delays]
        sim.run()
        assert all(p.done for p in processes)
        assert sim.now == pytest.approx(max(delays))

    @given(depths=st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_nested_process_chains_resolve(self, depths):
        sim = Simulator()

        def chain(depth):
            if depth == 0:
                yield Timeout(1.0)
                return 0
            value = yield sim.process(chain(depth - 1))
            return value + 1

        process = sim.process(chain(depths))
        sim.run()
        assert process.result == depths
        assert sim.now == pytest.approx(1.0)


class TestSessionProperties:
    @given(size=st.floats(min_value=1.0, max_value=5e9),
           demand=st.integers(min_value=0, max_value=5000),
           protocol=st.sampled_from(list(Protocol)),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=120, deadline=None)
    def test_outcomes_are_always_physical(self, size, demand, protocol,
                                          seed):
        source = SourceModel().build("f", protocol, demand)
        session = DownloadSession(
            source, size, HOME_VANTAGE,
            limits=SessionLimits(rate_caps=(2.5e6,)))
        outcome = session.simulate(np.random.default_rng(seed))
        assert 0.0 <= outcome.bytes_obtained <= size
        assert outcome.duration > 0.0
        assert outcome.average_rate <= 2.5e6 + 1e-6
        assert outcome.traffic >= 0.0
        if outcome.success:
            assert outcome.bytes_obtained == size
            assert outcome.failure_cause is None
        else:
            assert outcome.failure_cause is not None
        assert outcome.peak_rate >= outcome.average_rate - 1e-9


class TestOdrDecisionProperties:
    @given(popularity=st.integers(min_value=0, max_value=5000),
           cached=st.booleans(),
           bandwidth=st.one_of(
               st.none(),
               st.floats(min_value=1e3, max_value=1e7)),
           isp=st.sampled_from(list(ISP)),
           protocol=st.sampled_from(list(Protocol)))
    @settings(max_examples=200, deadline=None)
    def test_every_input_yields_a_coherent_decision(
            self, popularity, cached, bandwidth, isp, protocol):
        database = ContentDatabase()
        for when in range(min(popularity, 200)):
            database.record_request("f", 1e8, float(when))
        if popularity > 200:
            database.row("f").request_count = popularity
        database.set_cached("f", cached)
        context = UserContext("u", IPS[isp], bandwidth, None)
        decision = OdrMiddleware(database).decide(context, "f", protocol)

        # Structural coherence:
        assert isinstance(decision.action, Action)
        assert isinstance(decision.data_source, DataSource)
        assert decision.rationale
        # Without an AP, no decision can involve one.
        assert decision.action not in (Action.SMART_AP,
                                       Action.CLOUD_THEN_SMART_AP)
        # Uncached non-hot files always go through the cloud
        # pre-download path (Bottleneck 3).
        if popularity <= 84 and not cached:
            assert decision.action is Action.CLOUD_PREDOWNLOAD
        # Highly popular P2P never burns cloud delivery bandwidth.
        if popularity > 84 and protocol.is_p2p:
            assert not decision.uses_cloud_bandwidth
