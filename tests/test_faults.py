"""Tests for repro.faults: plans, policies, injection, resilience.

The load-bearing properties:

* fault plans are JSON round-trippable and their per-entity gating is
  deterministic and split-invariant;
* the retry / breaker / checkpoint policies are pure state machines;
* chaos runs are bit-identical given (plan, seed) -- across repeats,
  shard counts, and worker processes;
* the policies recover a strictly positive fraction of the failures
  the same plan causes with policies off;
* with no plan loaded, every fault branch is provably inert.
"""

import json

import pytest

from repro.faults import (
    AP_KILL_KINDS,
    CLOUD_KINDS,
    DEFAULT_POLICIES,
    INTERRUPT_KINDS,
    KIND_DOMAINS,
    SERVE_KINDS,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ResiliencePolicies,
    RetryPolicy,
    TransferCheckpoint,
    ap_entity_name,
    correlated_slots,
    default_chaos_plan,
    validate_serve_plan,
)
from repro.sim.clock import DAY, HOUR
from repro.sim.randomness import substream


def spec(**overrides):
    base = dict(kind="server_crash", target="isp:telecom",
                start=1.0 * DAY, duration=6.0 * HOUR)
    base.update(overrides)
    return FaultSpec(**base)


class TestFaultSpec:
    def test_known_kinds_have_domains(self):
        assert set(KIND_DOMAINS) >= set(INTERRUPT_KINDS)
        assert set(KIND_DOMAINS) >= set(AP_KILL_KINDS)
        assert set(KIND_DOMAINS) >= set(SERVE_KINDS)
        assert set(CLOUD_KINDS) | set(SERVE_KINDS) | set(
            k for k, d in KIND_DOMAINS.items() if d == "ap") \
            == set(KIND_DOMAINS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            spec(kind="meteor_strike")

    @pytest.mark.parametrize("overrides", [
        dict(start=-1.0),
        dict(duration=0.0),
        dict(severity=0.0),
        dict(probability=1.5),
        dict(target="ap:miwifi"),          # wrong domain for the kind
    ])
    def test_invalid_field_rejected(self, overrides):
        with pytest.raises(ValueError):
            spec(**overrides)

    def test_window_and_matching(self):
        crash = spec()
        assert crash.end == pytest.approx(crash.start + crash.duration)
        assert crash.active_at(crash.start)
        assert crash.active_at(crash.end - 1.0)
        assert not crash.active_at(crash.end)
        assert not crash.active_at(crash.start - 1.0)
        assert crash.matches("telecom")
        assert not crash.matches("unicom")
        assert spec(target="isp:*").matches("unicom")
        assert spec(kind="pool_pressure", target="*").matches("anything")


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = default_chaos_plan(seed=99)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        path = tmp_path / "plan.json"
        plan.to_file(path)
        assert FaultPlan.from_file(path) == plan
        # The serialisation is canonical: stable across a round trip.
        assert clone.to_json() == plan.to_json()

    def test_specs_of_filters_by_kind(self):
        plan = default_chaos_plan()
        kills = plan.specs_of(AP_KILL_KINDS)
        assert kills and all(s.kind in AP_KILL_KINDS for s in kills)

    def test_gating_is_deterministic_and_probabilistic(self):
        maybe = spec(kind="vm_stall", target="file:*", probability=0.5)
        plan_a = FaultPlan(name="p", seed=3, specs=(maybe,))
        plan_b = FaultPlan.from_json(plan_a.to_json())
        entities = [f"f{i:04d}" for i in range(400)]
        gates_a = [plan_a.applies(maybe, e) for e in entities]
        gates_b = [plan_b.applies(maybe, e) for e in entities]
        assert gates_a == gates_b
        hit = sum(gates_a) / len(gates_a)
        assert 0.35 < hit < 0.65
        always = spec(kind="vm_stall", target="file:*", probability=1.0)
        never = spec(kind="vm_stall", target="file:*", probability=0.0)
        assert all(plan_a.applies(always, e) for e in entities)
        assert not any(plan_a.applies(never, e) for e in entities)

    def test_ap_entity_name(self):
        from repro.ap.models import BENCHMARKED_APS
        names = {ap_entity_name(hw) for hw in BENCHMARKED_APS}
        assert names == {"hiwifi-(1s)", "miwifi", "newifi"}


class TestRetryPolicy:
    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(1) and policy.allows(3)
        assert not policy.allows(4)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=10.0, multiplier=2.0,
                             max_delay=35.0, jitter=0.0)
        assert [policy.backoff(n) for n in (1, 2, 3, 4)] == \
            [10.0, 20.0, 35.0, 35.0]

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(jitter=0.5)
        a = policy.backoff(2, substream(1, "x"))
        b = policy.backoff(2, substream(1, "x"))
        c = policy.backoff(2, substream(2, "x"))
        assert a == b
        assert a != c
        assert policy.backoff(2) <= a <= policy.backoff(2) * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCheckpoint:
    def test_commit_and_remaining(self):
        checkpoint = TransferCheckpoint()
        assert checkpoint.remaining(100.0) == 100.0
        checkpoint.commit(30.0)
        checkpoint.commit(-5.0)       # ignored
        assert checkpoint.remaining(100.0) == 70.0
        checkpoint.commit(80.0)
        assert checkpoint.remaining(100.0) == 0.0


class TestCircuitBreaker:
    @staticmethod
    def breaker(**overrides):
        base = dict(window=6, threshold=0.5, min_samples=3,
                    cooldown=10.0, name="test")
        base.update(overrides)
        return CircuitBreaker(**base)

    def test_stays_closed_below_min_samples(self):
        breaker = self.breaker()
        breaker.record(False, 0.0)
        breaker.record(False, 1.0)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(2.0)

    def test_trips_at_failure_threshold(self):
        breaker = self.breaker()
        for t in range(3):
            breaker.record(False, float(t))
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(3.0)
        assert breaker.retry_after(3.0) > 0.0

    def test_half_open_probe_closes_on_success(self):
        breaker = self.breaker()
        for t in range(3):
            breaker.record(False, float(t))
        assert not breaker.allow(5.0)
        assert breaker.allow(13.0)            # cooldown elapsed: probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record(True, 13.0)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(14.0)

    def test_half_open_probe_reopens_on_failure(self):
        breaker = self.breaker()
        for t in range(3):
            breaker.record(False, float(t))
        assert breaker.allow(13.0)
        breaker.record(False, 13.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(14.0)

    def test_mixed_outcomes_below_threshold_stay_closed(self):
        breaker = self.breaker()
        for t in range(8):
            breaker.record(t % 3 == 0, float(t))   # 2/3 failures: trips
        assert breaker.state == CircuitBreaker.OPEN
        healthy = self.breaker()
        for t in range(8):
            healthy.record(t % 4 != 0, float(t))   # 1/4 failures: fine
        assert healthy.state == CircuitBreaker.CLOSED


class TestInjectorQueries:
    @staticmethod
    def injector():
        specs = (
            spec(start=10.0, duration=5.0),
            spec(start=30.0, duration=5.0),
            FaultSpec(kind="isp_degrade", target="isp:*", start=12.0,
                      duration=10.0, severity=0.3),
            FaultSpec(kind="flash_slowdown", target="ap:miwifi",
                      start=0.0, duration=100.0, severity=0.5),
        )
        return FaultInjector(FaultPlan(name="q", seed=1, specs=specs))

    def test_active_and_first_active(self):
        inj = self.injector()
        assert inj.active("server_crash", "telecom", 12.0) is not None
        assert inj.active("server_crash", "telecom", 20.0) is None
        assert inj.active("server_crash", "unicom", 12.0) is None
        first = inj.first_active(("server_crash", "isp_degrade"),
                                 "telecom", 13.0)
        assert first is not None and first.kind == "server_crash"

    def test_clear_time_is_max_active_end(self):
        inj = self.injector()
        assert inj.clear_time(("server_crash", "isp_degrade"),
                              "telecom", 13.0) == pytest.approx(22.0)
        assert inj.clear_time(("server_crash",), "telecom", 50.0) \
            == pytest.approx(50.0)

    def test_next_break_finds_earliest_window_start(self):
        inj = self.injector()
        brk = inj.next_break(("server_crash",), "telecom", 0.0, 100.0)
        assert brk is not None and brk.start == pytest.approx(10.0)
        later = inj.next_break(("server_crash",), "telecom", 10.0, 100.0)
        assert later is not None and later.start == pytest.approx(30.0)
        assert inj.next_break(("server_crash",), "telecom", 30.0, 100.0) \
            is None

    def test_factor_multiplies_active_severities(self):
        inj = self.injector()
        assert inj.factor("isp_degrade", "telecom", 15.0) \
            == pytest.approx(0.3)
        assert inj.factor("isp_degrade", "telecom", 50.0) \
            == pytest.approx(1.0)
        assert inj.factor("flash_slowdown", "miwifi", 1.0) \
            == pytest.approx(0.5)
        assert inj.factor("flash_slowdown", "newifi", 1.0) \
            == pytest.approx(1.0)

    def test_crashed_isps(self):
        inj = self.injector()
        assert inj.crashed_isps(12.0) == frozenset({"telecom"})
        assert inj.crashed_isps(20.0) == frozenset()

    def test_scoreboard_tallies(self):
        inj = self.injector()
        inj.retry("cloud")
        inj.failover("cloud")
        inj.abort("ap")
        inj.recover("ap", 12.0)
        board = inj.scoreboard()
        assert (board["retries"], board["failovers"], board["aborts"],
                board["recoveries"]) == (1, 1, 1, 1)


def run_cloud(scale, seed, plan=None, policies=None):
    from repro.cloud import CloudConfig, XuanfengCloud
    from repro.workload import WorkloadConfig, WorkloadGenerator
    workload = WorkloadGenerator(
        WorkloadConfig(scale=scale, seed=seed)).generate()
    faults = FaultInjector(plan) if plan is not None else None
    cloud = XuanfengCloud(CloudConfig(scale=scale), faults=faults,
                          policies=policies)
    result = cloud.run(workload)
    return result, faults


def fingerprint(result):
    return ([record.to_dict() for record in result.pre_records],
            [record.to_dict() for record in result.fetch_records])


class TestEngineChaos:
    SCALE = 0.0015
    SEED = 20150222

    @pytest.fixture(scope="class")
    def runs(self):
        plan = default_chaos_plan()
        off, off_inj = run_cloud(self.SCALE, self.SEED, plan=plan)
        on, on_inj = run_cloud(self.SCALE, self.SEED, plan=plan,
                               policies=DEFAULT_POLICIES)
        return plan, (off, off_inj), (on, on_inj)

    def test_runs_are_bit_identical_under_chaos(self, runs):
        plan, _off, (on, _inj) = runs
        again, _ = run_cloud(self.SCALE, self.SEED, plan=plan,
                             policies=DEFAULT_POLICIES)
        assert fingerprint(on) == fingerprint(again)

    def test_faults_cause_and_policies_recover_failures(self, runs):
        _plan, (off, off_inj), (on, on_inj) = runs
        base, _ = run_cloud(self.SCALE, self.SEED)
        base_failures = sum(1 for r in base.pre_records
                            if not r.success)
        off_failures = sum(1 for r in off.pre_records if not r.success)
        on_failures = sum(1 for r in on.pre_records if not r.success)
        assert off_inj.scoreboard()["impacts"] > 0
        assert off_failures > base_failures
        assert on_failures < off_failures
        assert on_inj.scoreboard()["retries"] > 0
        assert on_inj.scoreboard()["recoveries"] > 0

    def test_fault_failure_causes_are_labelled(self, runs):
        _plan, (off, _inj), _on = runs
        causes = {record.failure_cause for record in off.pre_records
                  if not record.success and record.failure_cause}
        assert any(cause.startswith("fault:") for cause in causes)

    def test_no_plan_means_no_chaos_branches(self):
        base, _ = run_cloud(self.SCALE, self.SEED)
        again, _ = run_cloud(self.SCALE, self.SEED)
        assert fingerprint(base) == fingerprint(again)


class TestShardedChaos:
    SCALE = 0.0015
    SEED = 20150222

    @staticmethod
    def stats(shards, jobs=1, plan=None, policies_on=True):
        from repro.scale.pipelines import sharded_cloud_stats
        from repro.scale.plan import ShardPlan
        shard_plan = ShardPlan(scale=TestShardedChaos.SCALE,
                               seed=TestShardedChaos.SEED,
                               shards=shards)
        stats, _info = sharded_cloud_stats(shard_plan, jobs=jobs,
                                           fault_plan=plan,
                                           policies_on=policies_on)
        return stats

    def test_merged_stats_invariant_to_split_and_jobs(self):
        plan = default_chaos_plan()
        two = self.stats(2, plan=plan)
        four = self.stats(4, plan=plan)
        parallel = self.stats(4, jobs=2, plan=plan)
        assert two == four
        assert four == parallel

    def test_policies_recover_failures_in_sharded_replay(self):
        plan = default_chaos_plan()
        off = self.stats(4, plan=plan, policies_on=False)
        on = self.stats(4, plan=plan, policies_on=True)
        base = self.stats(4)
        assert off.failures > base.failures
        assert on.failures < off.failures
        assert off.fault_impacts > 0 and off.fault_aborts > 0
        assert on.fault_retries > 0 and on.fault_recoveries > 0
        assert base.fault_impacts == 0

    def test_fault_free_chaos_path_matches_plain_replay(self):
        assert self.stats(4) == self.stats(4, plan=None)


class TestApChaos:
    @staticmethod
    def replay(faults=None, policies=None, count=120):
        from repro.ap.benchrig import ApBenchmarkRig
        from repro.workload import (
            WorkloadConfig,
            WorkloadGenerator,
            sample_benchmark_requests,
        )
        workload = WorkloadGenerator(
            WorkloadConfig(scale=0.002, seed=20150301)).generate()
        sample = sample_benchmark_requests(workload, count)
        rig = ApBenchmarkRig(workload.catalog, faults=faults,
                             policies=policies)
        return rig.replay(sample)

    def test_ap_chaos_is_deterministic_and_recoverable(self):
        plan = default_chaos_plan()
        base = self.replay()
        off = self.replay(faults=FaultInjector(plan))
        on = self.replay(faults=FaultInjector(plan),
                         policies=DEFAULT_POLICIES)
        on_again = self.replay(faults=FaultInjector(plan),
                               policies=DEFAULT_POLICIES)
        assert off.failure_ratio > base.failure_ratio
        assert on.failure_ratio < off.failure_ratio
        assert [r.record.to_dict() for r in on.results] == \
            [r.record.to_dict() for r in on_again.results]
        causes = off.failure_cause_breakdown()
        assert any(cause.startswith("fault:") for cause in causes)


class TestChaosReport:
    def test_canonical_json_and_digest(self):
        from repro.faults.chaos import canonical_json, report_digest
        report = {"workload": {"scale": 0.001}, "plan": {"name": "x"},
                  "runs": {}}
        report["digest"] = report_digest(report)
        text = canonical_json(report)
        assert json.loads(text) == report
        # The digest covers everything except itself.
        relabeled = dict(report, digest="0" * 64)
        assert report_digest(relabeled) == report["digest"]
        changed = dict(report)
        changed["workload"] = {"scale": 0.002}
        assert report_digest(changed) != report["digest"]

    def test_stats_report_shape(self):
        from repro.faults.chaos import stats_report
        from repro.scale.replay import ShardRunStats
        from repro.sim.clock import WEEK
        stats = ShardRunStats(horizon=WEEK)
        stats.tasks = 10
        stats.failures = 2
        stats.fault_retries = 3
        report = stats_report(stats)
        assert report["failure_ratio"] == pytest.approx(0.2)
        assert report["faults"]["retries"] == 3
        json.dumps(report, sort_keys=True)   # JSON-serialisable


class TestResilienceScorecardRendering:
    def test_render_scorecard_mentions_the_verdict(self):
        from repro.experiments.resilience_scorecard import \
            render_scorecard
        report = {
            "plan": {"name": "p", "seed": 1, "spec_count": 2},
            "workload": {"scale": 0.001, "seed": 2, "shards": 4},
            "runs": {
                "policies_on": {
                    "tasks": 100, "failure_ratio": 0.01,
                    "faults": {"retries": 5, "failovers": 1,
                               "recoveries": 4, "aborts": 0}},
                "policies_off": {"tasks": 100, "failure_ratio": 0.06},
            },
            "recovery": {"policies_off_failures": 6,
                         "policies_on_failures": 1,
                         "recovered_tasks": 5,
                         "recovered_fraction": 5 / 6},
            "digest": "ab" * 32,
        }
        text = render_scorecard(report, True)
        assert "recovered:           5 tasks" in text
        assert "baseline consistent: True" in text


class TestServePlanValidation:
    """Serve-domain specs fail at plan-load time, naming the spec."""

    @staticmethod
    def _plan(*specs):
        return FaultPlan("serve-chaos", 11, list(specs))

    def test_valid_plan_passes(self):
        plan = self._plan(
            spec(kind="worker_kill", target="serve:worker-1"),
            spec(kind="correlated_kill", target="serve:*", count=2),
            spec(kind="probe_blackhole", target="serve:worker-0"))
        validate_serve_plan(plan, workers=2)   # no raise

    def test_out_of_range_slot_names_the_spec(self):
        plan = self._plan(spec(kind="conn_reset",
                               target="serve:worker-7"))
        with pytest.raises(ValueError) as excinfo:
            validate_serve_plan(plan, workers=2)
        message = str(excinfo.value)
        assert "conn_reset:serve:worker-7" in message
        assert "slot 7" in message and "0..1" in message

    def test_malformed_serve_target_names_the_spec(self):
        plan = self._plan(spec(kind="admin_slowloris",
                               target="serve:workerx"))
        with pytest.raises(ValueError) as excinfo:
            validate_serve_plan(plan, workers=2)
        assert "admin_slowloris:serve:workerx" in str(excinfo.value)

    def test_correlated_count_beyond_pool_names_the_spec(self):
        plan = self._plan(spec(kind="correlated_kill",
                               target="serve:*", count=5))
        with pytest.raises(ValueError) as excinfo:
            validate_serve_plan(plan, workers=3)
        message = str(excinfo.value)
        assert "correlated_kill:serve:*" in message
        assert "kill 5 slots" in message and "3 worker(s)" in message

    def test_count_only_legal_on_correlated_kill(self):
        with pytest.raises(ValueError):
            spec(kind="worker_kill", target="serve:worker-0", count=2)

    def test_count_round_trips_through_json(self):
        plan = self._plan(spec(kind="correlated_kill",
                               target="serve:*", count=3))
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.specs[0].count == 3
        # count == 1 stays implicit in the wire form.
        lean = self._plan(spec(kind="worker_kill",
                               target="serve:worker-0"))
        assert "count" not in lean.to_json()


class TestCorrelatedSlots:
    def test_anchored_group_wraps_consecutively(self):
        kill = spec(kind="correlated_kill", target="serve:worker-2",
                    count=3)
        plan = FaultPlan("ck", 5, [kill])
        assert correlated_slots(plan, kill, workers=4) == [2, 3, 0]

    def test_broadcast_group_is_seed_deterministic(self):
        kill = spec(kind="correlated_kill", target="serve:*", count=2)
        plan = FaultPlan("ck", 5, [kill])
        first = correlated_slots(plan, kill, workers=4)
        assert first == correlated_slots(plan, kill, workers=4)
        assert len(set(first)) == 2
        assert all(0 <= slot < 4 for slot in first)

    def test_count_clamped_to_pool(self):
        kill = spec(kind="correlated_kill", target="serve:*", count=2)
        plan = FaultPlan("ck", 5, [kill])
        assert correlated_slots(plan, kill, workers=1) == [0]
