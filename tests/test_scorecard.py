"""Tests for the reproduction scorecard -- the regression guard."""

import pytest

from repro.experiments.context import ExperimentContext
from repro.experiments.scorecard import build_scorecard


@pytest.fixture(scope="module")
def scorecard():
    return build_scorecard(ExperimentContext(scale=0.005, seed=20150222))


class TestScorecard:
    def test_covers_every_experiment(self, scorecard):
        assert len(scorecard.reports) == 15
        assert len(scorecard.all_errors) > 60

    def test_median_relative_error_band(self, scorecard):
        # The guard: reproduction quality must not silently regress.
        assert scorecard.median_relative_error < 0.30

    def test_majority_of_rows_within_25_percent(self, scorecard):
        assert scorecard.share_within_25_percent > 0.5

    def test_headline_claims_mostly_hold(self, scorecard):
        # At this reduced test scale a couple of claims can wobble
        # (rejections are peak-driven); the bulk must hold.
        assert len(scorecard.claims) == 12
        assert scorecard.claims_held >= 10

    def test_render_lists_claims_and_table(self, scorecard):
        text = scorecard.render()
        assert "headline claims" in text
        assert "median relative error" in text
        assert "table2" in text
