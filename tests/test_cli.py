"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_exist(self):
        parser = build_parser()
        for command in ("generate", "cloud", "ap", "odr",
                        "experiments", "figures", "serve", "loadgen"):
            args = parser.parse_args(
                [command] if command != "odr"
                else [command, "http://x/y"])
            assert args.command == command

    def test_serve_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--engine", "async", "--workers", "4",
             "--max-inflight", "64", "--no-batch", "--port", "0"])
        assert args.engine == "async"
        assert args.workers == 4
        assert args.max_inflight == 64
        assert args.no_batch
        args = parser.parse_args(["serve"])
        assert args.engine == "async" and args.port == 8034
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--engine", "gevent"])

    def test_loadgen_forwards_to_its_own_parser(self, capsys):
        # Forwarded verbatim: loadgen's parser rejects a run with no
        # targets, which proves the arguments reached it.
        with pytest.raises(SystemExit) as excinfo:
            main(["loadgen", "--rps", "5"])
        assert excinfo.value.code == 2
        assert "--target" in capsys.readouterr().err

    def test_runs_gc_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["runs", "gc", "--root", "r", "--keep-last", "5",
             "--stale-hours", "48", "--delete"])
        assert str(args.root) == "r"
        assert args.keep_last == 5
        assert args.stale_hours == 48.0
        assert args.delete
        # Dry run is the default.
        assert not parser.parse_args(["runs", "gc"]).delete
        with pytest.raises(SystemExit):
            parser.parse_args(["runs"])

    def test_metrics_flags_on_instrumented_subcommands(self):
        parser = build_parser()
        for argv in (["cloud"], ["ap"], ["odr", "http://x/y"],
                     ["experiments"]):
            args = parser.parse_args(
                argv + ["--metrics-out", "m.jsonl",
                        "--metrics-format", "prom"])
            assert str(args.metrics_out) == "m.jsonl"
            assert args.metrics_format == "prom"
            # Default: metrics disabled entirely.
            args = parser.parse_args(argv)
            assert args.metrics_out is None
            assert args.metrics_format is None

    def test_metrics_format_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cloud", "--metrics-format", "xml"])


class TestOdrCommand:
    def test_hot_p2p_file_with_bad_storage_goes_direct(self, capsys):
        assert main(["odr", "bittorrent://origin/abc",
                     "--popularity", "200", "--bandwidth", "20",
                     "--ap", "newifi", "--device", "usb-flash",
                     "--filesystem", "ntfs"]) == 0
        out = capsys.readouterr().out
        assert "user_device" in out and "Bottleneck 4" in out

    def test_slow_line_cached_file_is_staged(self, capsys):
        assert main(["odr", "http://host/f", "--popularity", "3",
                     "--cached", "--bandwidth", "0.5",
                     "--ap", "hiwifi"]) == 0
        out = capsys.readouterr().out
        assert "cloud+ap" in out

    def test_uncached_cold_file_waits_for_the_cloud(self, capsys):
        assert main(["odr", "ed2k://origin/f", "--popularity", "2",
                     "--bandwidth", "8"]) == 0
        assert "cloud" in capsys.readouterr().out

    def test_unknown_scheme_fails_loudly(self):
        with pytest.raises(ValueError):
            main(["odr", "gopher://host/f"])


class TestPipelineCommands:
    def test_generate_then_cloud_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "trace"
        assert main(["generate", "--scale", "0.0008", "--seed", "5",
                     "--out", str(trace)]) == 0
        assert (trace / "requests.jsonl").exists()
        capsys.readouterr()
        assert main(["cloud", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "cache hit ratio" in out
        assert "impeded fetches" in out

    def test_cloud_metrics_table_to_stdout(self, capsys):
        assert main(["cloud", "--scale", "0.0008",
                     "--metrics-format", "table"]) == 0
        out = capsys.readouterr().out
        assert "repro_cloud_cache_hits_total" in out
        assert "repro_sim_events_fired_total" in out

    def test_ap_command(self, tmp_path, capsys):
        assert main(["ap", "--scale", "0.0015", "--sample", "30"]) == 0
        out = capsys.readouterr().out
        assert "failure ratio" in out
        assert "failure causes" in out

    def test_figures_command(self, tmp_path, capsys):
        assert main(["figures", "--scale", "0.0015",
                     "--outdir", str(tmp_path / "figs")]) == 0
        assert (tmp_path / "figs" / "fig11.svg").exists()

    def test_experiments_command_writes_document(self, tmp_path,
                                                 capsys):
        output = tmp_path / "EXP.md"
        assert main(["experiments", "--scale", "0.0015",
                     "--output", str(output)]) == 0
        document = output.read_text()
        assert "paper vs measured" in document
        assert "fig17" in document


class TestShardedCommands:
    def test_generate_jobs_writes_gzipped_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace"
        assert main(["generate", "--scale", "0.0008", "--jobs", "1",
                     "--shards", "4", "--gzip",
                     "--out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "sharded generate" in out
        assert (trace / "requests.jsonl.gz").exists()
        from repro.workload import load_workload
        workload = load_workload(trace)
        assert workload.requests

    def test_cloud_jobs_runs_the_sharded_replay(self, capsys):
        assert main(["cloud", "--scale", "0.0008", "--jobs", "1",
                     "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "sharded replay" in out
        assert "cache hit ratio" in out

    def test_cloud_jobs_refuses_ablations(self, capsys):
        assert main(["cloud", "--scale", "0.0008", "--jobs", "1",
                     "--no-cache"]) == 2
        assert "event-driven engine" in capsys.readouterr().err

    def test_cloud_jobs_refuses_trace_replay(self, tmp_path, capsys):
        assert main(["cloud", "--jobs", "1",
                     "--trace", str(tmp_path)]) == 2
        assert "drop --trace" in capsys.readouterr().err

    def test_ap_jobs_replay(self, capsys):
        assert main(["ap", "--scale", "0.0015", "--sample", "30",
                     "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "parallel replay" in out
        assert "failure ratio" in out

    def test_experiments_jobs_writes_document(self, tmp_path, capsys):
        output = tmp_path / "EXP.md"
        assert main(["experiments", "--scale", "0.0008", "--jobs", "1",
                     "--output", str(output)]) == 0
        document = output.read_text()
        assert "paper vs measured" in document
        assert "Reproduction scorecard" in document


class TestDurableCommands:
    def test_cloud_run_dir_then_resume_reuses_all_shards(
            self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        base = ["cloud", "--scale", "0.0008", "--shards", "2"]
        assert main(base + ["--run-dir", str(run_dir)]) == 0
        first = capsys.readouterr().out
        assert "reused shards:    0/2" in first
        assert "merged digest:" in first

        assert main(base + ["--resume", str(run_dir)]) == 0
        second = capsys.readouterr().out
        assert "reused shards:    2/2" in second

        digest = [line for line in first.splitlines()
                  if "merged digest" in line]
        assert digest == [line for line in second.splitlines()
                          if "merged digest" in line]

    def test_generate_run_dir_prints_workload_digest(
            self, tmp_path, capsys):
        trace = tmp_path / "trace"
        assert main(["generate", "--scale", "0.0008", "--shards", "2",
                     "--out", str(trace),
                     "--run-dir", str(tmp_path / "run")]) == 0
        out = capsys.readouterr().out
        assert "merged digest:" in out
        assert (trace / "requests.jsonl").exists()

    def test_recovery_knobs_require_a_run_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cloud", "--scale", "0.0008",
                  "--shard-timeout", "5"])
        assert excinfo.value.code == 2
        assert "--run-dir or --resume" in capsys.readouterr().err

    def test_resume_of_missing_run_dir_exits_2(self, tmp_path, capsys):
        assert main(["cloud", "--scale", "0.0008",
                     "--resume", str(tmp_path / "nope")]) == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_reused_run_dir_without_resume_exits_2(
            self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        base = ["cloud", "--scale", "0.0008", "--shards", "2"]
        assert main(base + ["--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        assert main(base + ["--run-dir", str(run_dir)]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_ap_run_dir_then_resume(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        base = ["ap", "--scale", "0.0015", "--sample", "30"]
        assert main(base + ["--run-dir", str(run_dir)]) == 0
        first = capsys.readouterr().out
        assert "reused AP shards:  0/" in first
        assert main(base + ["--resume", str(run_dir)]) == 0
        second = capsys.readouterr().out
        assert "reused AP shards:" in second
        assert "0/" not in second.split("reused AP shards:")[1] \
            .splitlines()[0]
