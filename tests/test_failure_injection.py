"""Failure-injection and degenerate-regime tests.

The simulators must behave sensibly -- not just not crash -- when a
whole layer misbehaves: every source dead, no upload capacity, a cloud
with no cache, an AP whose firmware always fails.
"""

import numpy as np
import pytest

from repro.ap import ApBenchmarkRig, MIWIFI, OpenWrtSystem, SmartAP
from repro.cloud import CloudConfig, XuanfengCloud
from repro.sim.clock import mbps
from repro.transfer.source import (
    CAUSE_SYSTEM_BUG,
    SourceModel,
)
from repro.transfer.swarm import SwarmModel
from repro.workload import WorkloadConfig, WorkloadGenerator
from repro.workload.popularity import PopularityClass

TINY = WorkloadConfig(scale=0.0015, seed=3)


@pytest.fixture(scope="module")
def tiny_workload():
    return WorkloadGenerator(TINY).generate()


def dead_source_model() -> SourceModel:
    """Every P2P swarm is dead and every server drops everything."""
    return SourceModel(
        swarm_model=SwarmModel(seeds_per_weekly_request=0.0),
        http_drop_base=1.0, http_drop_floor=1.0)


class TestDeadInternet:
    def test_cloud_survives_total_source_death(self, tiny_workload):
        config = CloudConfig(scale=TINY.scale, collaborative_cache=False)
        cloud = XuanfengCloud(config,
                              source_model=dead_source_model())
        result = cloud.run(tiny_workload)
        # Every P2P attempt fails outright; HTTP mostly fails too (the
        # cloud's multi-vantage retry bonus salvages a fraction even
        # from a drop-everything server); nothing crashes.
        assert result.request_failure_ratio > 0.9
        p2p_failures = [task for task in result.tasks
                        if task.file.protocol.is_p2p]
        assert all(not task.pre_record.success for task in p2p_failures)
        assert result.cache_hit_ratio == 0.0
        # All failures carry a cause.
        assert all(record.failure_cause is not None
                   for record in result.pre_records
                   if not record.success)

    def test_preseeded_cache_still_serves_when_sources_die(
            self, tiny_workload):
        # With the cache alive, pre-seeded files are served even though
        # no source works: the DTN insight in one test.
        config = CloudConfig(scale=TINY.scale)
        cloud = XuanfengCloud(config,
                              source_model=dead_source_model())
        result = cloud.run(tiny_workload)
        assert 0.0 < result.request_failure_ratio < 1.0
        assert result.cache_hit_ratio > 0.3
        assert len(result.fetch_records) > 0

    def test_ap_replay_survives_total_source_death(self, tiny_workload):
        from repro.workload import sample_benchmark_requests
        sample = sample_benchmark_requests(tiny_workload, 60)
        rig = ApBenchmarkRig(tiny_workload.catalog,
                             source_model=dead_source_model())
        report = rig.replay(sample)
        assert report.failure_ratio > 0.95   # bug-free tasks all fail
        assert report.speed_cdf().median < 1e3


class TestNoUploadCapacity:
    def test_cloud_rejects_every_fetch(self, tiny_workload):
        # One byte-per-second of total purchased upload bandwidth.
        cloud = XuanfengCloud(CloudConfig(
            scale=TINY.scale, upload_capacity=1.0))
        result = cloud.run(tiny_workload)
        fetches = result.fetch_records
        assert fetches
        assert all(record.rejected for record in fetches)
        assert result.rejection_ratio == 1.0
        # Rejected fetches show up at 0 B/s, as in Figure 8's minimum.
        assert result.fetch_speed_cdf().max == 0.0


class TestBrokenFirmware:
    def test_ap_with_always_failing_firmware(self, tiny_workload):
        from repro.workload import sample_benchmark_requests
        sample = sample_benchmark_requests(tiny_workload, 30)
        ap = SmartAP(MIWIFI,
                     system=OpenWrtSystem(bug_failure_rate=0.999999))
        rig = ApBenchmarkRig(tiny_workload.catalog, aps=[ap])
        report = rig.replay(sample)
        assert report.failure_ratio == 1.0
        causes = report.failure_cause_breakdown()
        assert causes[CAUSE_SYSTEM_BUG] == 1.0


class TestDegenerateWorkloads:
    def test_single_file_workload(self):
        config = WorkloadConfig(scale=2e-6, seed=1)   # 1 file
        workload = WorkloadGenerator(config).generate()
        assert len(workload.catalog) == 1
        result = XuanfengCloud(
            CloudConfig(scale=0.001)).run(workload)
        assert len(result.tasks) == len(workload.requests)

    def test_all_unpopular_catalog(self, tiny_workload):
        # Force every file unpopular and verify the cloud's failure
        # ratio rises accordingly (Bottleneck 3's premise).
        from repro.workload.popularity import PopularityModel
        from repro.workload.catalog import FileCatalog
        model = PopularityModel(unpopular_file_share=0.997,
                                highly_popular_file_share=0.001)
        catalog = FileCatalog(popularity_model=model)
        catalog.generate(400, np.random.default_rng(0))
        shares = catalog.class_file_shares()
        assert shares[PopularityClass.UNPOPULAR] > 0.98
