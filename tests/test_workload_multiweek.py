"""Tests for multi-week evolution and persistent-cloud warm-up."""

import pytest

from repro.cloud import CloudConfig, XuanfengCloud
from repro.workload import WorkloadConfig
from repro.workload.multiweek import (
    EvolutionConfig,
    MultiWeekGenerator,
    WeekStats,
    run_weeks,
)
from repro.workload.popularity import PopularityClass

SMALL = WorkloadConfig(scale=0.002, seed=17)


class TestEvolutionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EvolutionConfig(churn=1.5)
        with pytest.raises(ValueError):
            EvolutionConfig(demand_decay=0.0)
        with pytest.raises(ValueError):
            EvolutionConfig(user_growth=-0.1)


class TestGenerator:
    @pytest.fixture(scope="class")
    def three_weeks(self):
        generator = MultiWeekGenerator(SMALL)
        return list(generator.weeks(3))

    def test_week_one_matches_single_week_generator(self, three_weeks):
        assert len(three_weeks[0].catalog) == SMALL.file_count
        assert len(three_weeks[0].requests) > 0

    def test_catalog_grows_by_churn(self, three_weeks):
        sizes = [len(week.catalog) for week in three_weeks]
        assert sizes[1] > sizes[0]
        assert sizes[2] > sizes[1]

    def test_user_population_grows(self, three_weeks):
        counts = [len(week.users) for week in three_weeks]
        assert counts[0] < counts[1] < counts[2]

    def test_task_ids_are_distinct_across_weeks(self, three_weeks):
        ids = set()
        for week in three_weeks:
            for request in week.requests:
                assert request.task_id not in ids
                ids.add(request.task_id)

    def test_old_content_cools(self, three_weeks):
        week1_files = {record.file_id
                       for record in three_weeks[0].catalog}
        week3 = three_weeks[2]
        old_demand = sum(record.weekly_demand
                         for record in week3.catalog
                         if record.file_id in week1_files)
        total_demand = week3.catalog.total_demand()
        # By week 3 a substantial share of demand is novelty.
        assert old_demand < 0.8 * total_demand

    def test_volume_stays_roughly_stationary(self):
        generator = MultiWeekGenerator(SMALL)
        weeks = list(generator.weeks(4))
        first = len(weeks[0].requests)
        last = len(weeks[-1].requests)
        assert 0.5 * first < last < 1.6 * first

    def test_weeks_count_validation(self):
        generator = MultiWeekGenerator(SMALL)
        with pytest.raises(ValueError):
            list(generator.weeks(0))


class TestPersistentCloudWarmup:
    def test_cache_warms_and_failures_fall(self):
        generator = MultiWeekGenerator(SMALL)
        # Cold start: no pre-existing cache, so the warm-up is visible.
        config = CloudConfig(
            scale=SMALL.scale,
            precached_probability={klass: 0.0
                                   for klass in PopularityClass})
        cloud = XuanfengCloud(config)
        trajectory = run_weeks(cloud, generator, 3)
        assert all(isinstance(entry, WeekStats)
                   for entry in trajectory)
        # Hit ratio climbs markedly after the first week...
        assert trajectory[1].cache_hit_ratio > \
            trajectory[0].cache_hit_ratio + 0.03
        # ...failures drop...
        assert trajectory[1].request_failure_ratio < \
            trajectory[0].request_failure_ratio
        # ...and the pool keeps accumulating content.
        pools = [entry.pool_files for entry in trajectory]
        assert pools[0] < pools[1] < pools[2]
