"""Tests for repro.loadgen: trace replay, client pool, ramp scoring.

The load-bearing properties:

* trace paths are deterministic, well-formed /decide queries that the
  web app answers 200 (per-user AP aux info never draws an impossible
  device/filesystem combination);
* the client layer pools keep-alive connections, tracks EWMA latency,
  quarantines a target after consecutive failures, and un-benches it
  after the cooldown;
* a load step against a live server completes every scheduled request
  and its scorecard accounts for all of them;
* the ramp marks SLO-blowing steps unhealthy and reports saturation as
  the best healthy achieved throughput.
"""

import json

import pytest

from repro.core.webapp import OdrWebApp
from repro.loadgen import (
    LoadGenerator,
    RequestOutcome,
    StepScorecard,
    Target,
    TargetSet,
    decide_path,
    load_or_generate_paths,
    ramp_rates,
    saturation_rps,
    scorecard,
    step_healthy,
    workload_paths,
)
from repro.loadgen.trace import user_ap_params
from repro.obs import MetricsRegistry
from repro.serve import AsyncOdrServer, AsyncServerThread
from repro.workload import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    return WorkloadGenerator(
        WorkloadConfig(scale=0.003, seed=11)).generate()


class TestTrace:
    def test_paths_are_deterministic(self, workload):
        assert workload_paths(workload, limit=50) \
            == workload_paths(workload, limit=50)

    def test_ap_params_deterministic_and_valid(self):
        seen_ap = False
        for index in range(200):
            params = user_ap_params(f"user-{index}")
            assert params == user_ap_params(f"user-{index}")
            if not params:
                continue
            seen_ap = True
            if params["device"] == "sd":
                assert params["filesystem"] == "fat"
            if params["device"] == "sata":
                assert params["filesystem"] == "ext4"
        assert seen_ap

    def test_decide_path_includes_aux_info(self, workload):
        request = workload.requests[0]
        path = decide_path(request, 123,
                           workload.user_by_id()[request.user_id])
        assert path.startswith("/decide?link=")
        assert "popularity=123" in path
        assert "isp=" in path

    def test_webapp_answers_every_path_200(self, workload):
        paths = workload_paths(workload, limit=300)
        app = OdrWebApp(None)
        responses = app.handle_batch([(path, "") for path in paths])
        assert {status for status, *_rest in responses} == {200}

    def test_generate_paths_entry_point(self):
        paths = load_or_generate_paths(None, 0.003, 11, limit=20)
        assert len(paths) == 20
        assert all(path.startswith("/decide?") for path in paths)


class TestClient:
    def test_rejects_non_http_targets(self):
        with pytest.raises(ValueError):
            Target("https://secure.example")

    def test_outcome_classification(self):
        assert RequestOutcome(200, 1.0).ok
        # Sheds are their own classes, distinct from hard 5xx.
        assert RequestOutcome(503, 1.0).status_class == "503"
        assert RequestOutcome(504, 1.0).status_class == "504"
        assert RequestOutcome(503, 1.0).shed
        assert RequestOutcome(500, 1.0).status_class == "5xx"
        assert not RequestOutcome(500, 1.0).shed
        assert RequestOutcome(None, 1.0,
                              error="Timeout").status_class == "error"
        assert not RequestOutcome(None, 1.0, error="Timeout").ok

    def test_quarantine_after_consecutive_failures(self):
        ticks = [0.0]
        target = Target("http://127.0.0.1:1", quarantine_failures=3,
                        quarantine_seconds=5.0,
                        clock=lambda: ticks[0])
        for _ in range(3):
            target._record_outcome(
                RequestOutcome(None, 1.0, error="ConnectionRefused"))
        assert target.quarantined
        assert target.quarantines == 1
        ticks[0] = 6.0
        assert not target.quarantined

    def test_success_resets_failure_streak(self):
        target = Target("http://127.0.0.1:1", quarantine_failures=3)
        target._record_outcome(RequestOutcome(None, 1.0, error="x"))
        target._record_outcome(RequestOutcome(None, 1.0, error="x"))
        target._record_outcome(RequestOutcome(200, 1.0))
        target._record_outcome(RequestOutcome(None, 1.0, error="x"))
        assert not target.quarantined

    def test_pick_steers_around_quarantined(self):
        ticks = [0.0]
        healthy = Target("http://127.0.0.1:1", clock=lambda: ticks[0])
        sick = Target("http://127.0.0.1:2", quarantine_failures=1,
                      quarantine_seconds=100.0,
                      clock=lambda: ticks[0])
        sick._record_outcome(RequestOutcome(500, 1.0))
        targets = TargetSet([sick, healthy])
        picks = {targets.pick(index).port for index in range(4)}
        assert picks == {1}
        assert targets.quarantine_skips > 0

    def test_pick_uses_nominal_when_all_benched(self):
        sick = Target("http://127.0.0.1:2", quarantine_failures=1,
                      quarantine_seconds=100.0)
        sick._record_outcome(RequestOutcome(500, 1.0))
        targets = TargetSet([sick])
        assert targets.pick(0) is sick

    def test_fresh_mode_never_pools_connections(self):
        """Availability campaigns use fresh=True: every request is a
        new connection (so the kernel re-balances it across
        SO_REUSEPORT listeners) instead of riding one pinned
        keep-alive flow out of the LIFO pool."""
        server = AsyncOdrServer(metrics=MetricsRegistry())
        path = "/decide?link=http%3A%2F%2Fhost%2Ff&bandwidth_mbps=8"
        with AsyncServerThread(server) as thread:
            pooled = Target(thread.url)
            for _ in range(3):
                assert pooled.request(path).ok
            fresh = Target(thread.url, fresh=True)
            for _ in range(3):
                assert fresh.request(path).ok
        # The pooled client reconnected once and kept the session;
        # the fresh client dialed anew every time and kept nothing.
        assert pooled.pooled_connections == 1
        assert pooled.reconnects == 1
        assert fresh.pooled_connections == 0
        assert fresh.reconnects == 3

    def test_partial_response_is_an_error_outcome(self):
        """A server that dies mid-response leaves a truncated status
        line; http.client raises BadStatusLine (an HTTPException, not
        an OSError).  The client must classify it as a failed request
        -- an escaping exception here silently kills the loadgen
        worker thread recording the outcome, which is how a chaos
        campaign's scorecard loses most of its denominator."""
        import socket
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]
        done = threading.Event()

        def half_answer():
            conn, _addr = listener.accept()
            conn.recv(4096)
            conn.sendall(b"H")       # one byte of "HTTP/1.1 ...", then gone
            conn.close()
            done.set()

        thread = threading.Thread(target=half_answer, daemon=True)
        thread.start()
        try:
            target = Target(f"http://127.0.0.1:{port}", timeout=5.0)
            outcome = target.request("/decide")
            assert done.wait(5.0)
            assert outcome.status is None
            assert outcome.error == "BadStatusLine"
            assert not outcome.ok
        finally:
            listener.close()


class TestRetryAfterBackoff:
    """503 sheds back the target off; they are not failures."""

    def test_503_honors_retry_after_hint(self):
        ticks = [0.0]
        target = Target("http://127.0.0.1:1", clock=lambda: ticks[0])
        target._record_outcome(RequestOutcome(503, 1.0,
                                              retry_after=2.0))
        assert target.sheds_503 == 1
        assert target.backoffs == 1
        assert target.backed_off
        assert not target.quarantined
        assert not target.available
        ticks[0] = 2.5
        assert not target.backed_off
        assert target.available

    def test_503_does_not_feed_quarantine_streak(self):
        target = Target("http://127.0.0.1:1", quarantine_failures=3)
        for _ in range(10):
            target._record_outcome(RequestOutcome(503, 1.0,
                                                  retry_after=0.0))
        assert not target.quarantined
        assert target.quarantines == 0
        assert target.sheds_503 == 10

    def test_504_counts_separately_without_backoff(self):
        target = Target("http://127.0.0.1:1", quarantine_failures=3)
        target._record_outcome(RequestOutcome(504, 1.0))
        assert target.sheds_504 == 1
        assert not target.backed_off
        assert not target.quarantined

    def test_hard_5xx_still_quarantines(self):
        target = Target("http://127.0.0.1:1", quarantine_failures=2,
                        quarantine_seconds=100.0)
        target._record_outcome(RequestOutcome(500, 1.0))
        target._record_outcome(RequestOutcome(500, 1.0))
        assert target.quarantined

    def test_retry_after_hint_is_capped(self):
        from repro.loadgen.client import RETRY_AFTER_CAP
        ticks = [0.0]
        target = Target("http://127.0.0.1:1", clock=lambda: ticks[0])
        target._record_outcome(RequestOutcome(503, 1.0,
                                              retry_after=9999.0))
        ticks[0] = RETRY_AFTER_CAP + 0.1
        assert not target.backed_off

    def test_pick_steers_around_backed_off_target(self):
        ticks = [0.0]
        healthy = Target("http://127.0.0.1:1", clock=lambda: ticks[0])
        shedding = Target("http://127.0.0.1:2",
                          clock=lambda: ticks[0])
        shedding._record_outcome(RequestOutcome(503, 1.0,
                                                retry_after=50.0))
        targets = TargetSet([shedding, healthy])
        picks = {targets.pick(index).port for index in range(4)}
        assert picks == {1}
        assert targets.backoff_skips > 0
        assert targets.quarantine_skips == 0


class TestLiveStep:
    def test_step_completes_all_requests(self, workload):
        paths = workload_paths(workload, limit=100)
        server = AsyncOdrServer(metrics=MetricsRegistry())
        with AsyncServerThread(server) as thread:
            targets = TargetSet.from_urls([thread.url])
            with LoadGenerator(targets, paths,
                               workers=4) as generator:
                warmed = generator.prewarm(2)
                assert warmed == 2
                card = generator.run_step(rps=80.0, duration=1.0)
        assert card.requests == 80
        assert card.completed == 80
        assert card.statuses.get("2xx") == 80
        assert card.errors == 0
        assert card.latency.count == 80
        assert card.achieved_rps > 0
        assert step_healthy(card)
        rendered = card.to_dict()
        assert rendered["latency"]["p95_ms"] > 0
        assert rendered["error_budget_remaining"] == 1.0
        json.dumps(rendered)   # scorecards must be JSON-ready

    def test_connections_are_reused(self, workload):
        paths = workload_paths(workload, limit=50)
        server = AsyncOdrServer(metrics=MetricsRegistry())
        with AsyncServerThread(server) as thread:
            targets = TargetSet.from_urls([thread.url])
            with LoadGenerator(targets, paths,
                               workers=2) as generator:
                generator.prewarm(2)
                card = generator.run_step(rps=60.0, duration=1.0)
        # Pooled keep-alive: far fewer dials than requests.
        assert card.reconnects <= 4
        assert card.completed == 60

    def test_deadline_shed_accounting(self, workload):
        """admitted + sheds + errors fully account for what was sent:
        a zero budget turns every /decide answer into a 504."""
        paths = workload_paths(workload, limit=50)
        metrics = MetricsRegistry()
        server = AsyncOdrServer(metrics=metrics)
        with AsyncServerThread(server) as thread:
            targets = TargetSet.from_urls([thread.url])
            with LoadGenerator(targets, paths, workers=4,
                               deadline_ms=0.0) as generator:
                card = generator.run_step(rps=50.0, duration=1.0)
        assert card.completed == 50
        assert card.shed_504 == 50
        assert card.statuses.get("2xx", 0) == 0
        assert card.deadline_hit_rate == 0.0
        assert card.hard_errors == 0
        # Server-side invariant: every request is admitted or rejected.
        sent = metrics.counter("repro_serve_requests_total",
                               endpoint="/decide").value
        rejected = metrics.counter("repro_serve_rejected_total",
                                   endpoint="/decide",
                                   reason="deadline").value
        admitted = metrics.counter("repro_serve_admitted_total",
                                   endpoint="/decide").value
        assert sent == 50
        assert admitted + rejected == sent
        rendered = card.to_dict()
        assert rendered["shed_504"] == 50
        assert rendered["deadline_hit_rate"] == 0.0
        json.dumps(rendered)

    def test_generous_deadline_serves_everything(self, workload):
        paths = workload_paths(workload, limit=50)
        server = AsyncOdrServer(metrics=MetricsRegistry())
        with AsyncServerThread(server) as thread:
            targets = TargetSet.from_urls([thread.url])
            with LoadGenerator(targets, paths, workers=4,
                               deadline_ms=10000.0) as generator:
                generator.prewarm(2)
                card = generator.run_step(rps=50.0, duration=1.0)
        assert card.completed == 50
        assert card.statuses.get("2xx") == 50
        assert card.shed_504 == 0
        assert card.deadline_hit_rate == 1.0


class TestRamp:
    def card(self, offered, completed, errors=0, wall=1.0):
        card = StepScorecard(offered_rps=offered, duration=1.0,
                             requests=completed + errors)
        card.completed = completed + errors
        card.wall_seconds = wall
        card.statuses = {"2xx": completed}
        if errors:
            card.statuses["5xx"] = errors
        return card

    def test_ramp_rates_geometric(self):
        rates = ramp_rates(10.0, 160.0, 5)
        assert rates[0] == pytest.approx(10.0)
        assert rates[-1] == pytest.approx(160.0)
        assert len(rates) == 5
        ratios = [b / a for a, b in zip(rates, rates[1:])]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_error_budget_marks_step_unhealthy(self):
        healthy = self.card(100.0, 100)
        sick = self.card(100.0, 95, errors=5)
        assert step_healthy(healthy)
        assert not step_healthy(sick)

    def test_lagging_throughput_marks_step_unhealthy(self):
        lagging = self.card(100.0, 50, wall=1.0)
        assert not step_healthy(lagging)

    def test_saturation_is_best_healthy_achieved(self):
        cards = [self.card(50.0, 50), self.card(100.0, 100),
                 self.card(200.0, 110)]
        assert saturation_rps(cards) == pytest.approx(100.0)

    def test_scorecard_totals(self):
        cards = [self.card(50.0, 50), self.card(100.0, 90, errors=10)]
        result = scorecard(cards, meta={"engine": "async"})
        assert result["total_steps"] == 2
        assert result["healthy_steps"] == 1
        assert result["total_errors"] == 10
        assert result["saturation_rps"] == pytest.approx(50.0)
        assert result["meta"]["engine"] == "async"
        assert result["steps"][0]["healthy"]
        assert not result["steps"][1]["healthy"]
