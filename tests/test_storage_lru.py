"""Tests for the byte-budgeted LRU cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.lru import LRUCache


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0.0)

    def test_get_put_roundtrip(self):
        cache: LRUCache[str, str] = LRUCache(100.0)
        cache.put("a", "alpha", 10.0)
        assert cache.get("a") == "alpha"
        assert "a" in cache
        assert len(cache) == 1
        assert cache.used_bytes == 10.0

    def test_miss_returns_none_and_counts(self):
        cache: LRUCache[str, str] = LRUCache(100.0)
        assert cache.get("ghost") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.0

    def test_hit_ratio(self):
        cache: LRUCache[str, int] = LRUCache(100.0)
        cache.put("a", 1, 1.0)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_ratio == pytest.approx(2 / 3)

    def test_contains_does_not_touch(self):
        cache: LRUCache[str, int] = LRUCache(100.0)
        cache.put("a", 1, 1.0)
        assert "a" in cache
        assert cache.stats.lookups == 0

    def test_peek_does_not_refresh_recency(self):
        cache: LRUCache[str, int] = LRUCache(20.0)
        cache.put("old", 1, 10.0)
        cache.put("new", 2, 10.0)
        cache.peek("old")
        evicted = cache.put("third", 3, 10.0)
        assert evicted == ["old"]


class TestEviction:
    def test_lru_order(self):
        cache: LRUCache[str, int] = LRUCache(30.0)
        cache.put("a", 1, 10.0)
        cache.put("b", 2, 10.0)
        cache.put("c", 3, 10.0)
        cache.get("a")                       # refresh a
        evicted = cache.put("d", 4, 10.0)
        assert evicted == ["b"]
        assert list(cache.keys_cold_to_hot()) == ["c", "a", "d"]

    def test_large_insert_evicts_several(self):
        cache: LRUCache[str, int] = LRUCache(30.0)
        for key in "abc":
            cache.put(key, 0, 10.0)
        evicted = cache.put("big", 0, 25.0)
        assert evicted == ["a", "b", "c"]
        assert cache.used_bytes == pytest.approx(25.0)

    def test_oversized_entry_is_refused(self):
        cache: LRUCache[str, int] = LRUCache(10.0)
        with pytest.raises(ValueError):
            cache.put("huge", 0, 11.0)

    def test_replacing_a_key_updates_bytes(self):
        cache: LRUCache[str, int] = LRUCache(100.0)
        cache.put("a", 1, 10.0)
        cache.put("a", 2, 30.0)
        assert cache.used_bytes == 30.0
        assert cache.get("a") == 2

    def test_remove(self):
        cache: LRUCache[str, int] = LRUCache(100.0)
        cache.put("a", 1, 10.0)
        assert cache.remove("a")
        assert not cache.remove("a")
        assert cache.used_bytes == 0.0

    def test_negative_size_rejected(self):
        cache: LRUCache[str, int] = LRUCache(100.0)
        with pytest.raises(ValueError):
            cache.put("a", 1, -1.0)


class TestInvariants:
    @given(operations=st.lists(
        st.tuples(st.sampled_from(["put", "get", "remove"]),
                  st.integers(min_value=0, max_value=20),
                  st.floats(min_value=0.0, max_value=40.0)),
        max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_used_bytes_is_exact_and_bounded(self, operations):
        cache: LRUCache[int, int] = LRUCache(100.0)
        shadow: dict[int, float] = {}
        for op, key, size in operations:
            if op == "put":
                evicted = cache.put(key, key, size)
                shadow[key] = size
                for cold in evicted:
                    del shadow[cold]
            elif op == "get":
                cache.get(key)
            else:
                cache.remove(key)
                shadow.pop(key, None)
            assert cache.used_bytes == pytest.approx(sum(shadow.values()))
            assert cache.used_bytes <= cache.capacity_bytes + 1e-9
            assert set(cache.keys_cold_to_hot()) == set(shadow)
