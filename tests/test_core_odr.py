"""Tests for ODR: decisions, bottleneck detectors, the Fig. 15 machine."""

import pytest

from repro.ap import HIWIFI_1S, MIWIFI, NEWIFI
from repro.cloud.database import ContentDatabase
from repro.core import (
    Action,
    BottleneckDetector,
    CookieJar,
    DataSource,
    Decision,
    OdrMiddleware,
    SmartApInfo,
    UserContext,
)
from repro.netsim.ip import IpAllocator
from repro.netsim.isp import ISP
from repro.sim.clock import kbps, mbps
from repro.storage import Filesystem, USB_FLASH_8GB, USB_HDD_5400
from repro.transfer.protocols import Protocol

ALLOCATOR = IpAllocator()
UNICOM_IP = ALLOCATOR.allocate(ISP.UNICOM)
OTHER_IP = ALLOCATOR.allocate(ISP.OTHER)

NEWIFI_NTFS = SmartApInfo(NEWIFI, USB_FLASH_8GB, Filesystem.NTFS)
NEWIFI_EXT4_HDD = SmartApInfo(NEWIFI, USB_HDD_5400, Filesystem.EXT4)
MIWIFI_DEFAULT = SmartApInfo.default_for(MIWIFI)


def ctx(ip=UNICOM_IP, bandwidth=mbps(20.0), ap=NEWIFI_NTFS,
        user="u1") -> UserContext:
    return UserContext(user_id=user, ip_address=ip,
                       access_bandwidth=bandwidth, smart_ap=ap)


def make_db(popularity=0, cached=False,
            file_id="file") -> ContentDatabase:
    db = ContentDatabase()
    for when in range(popularity):
        db.record_request(file_id, 1e8, float(when))
    db.set_cached(file_id, cached)
    return db


class TestDecisionValidation:
    def test_unknown_bottleneck_rejected(self):
        with pytest.raises(ValueError):
            Decision(Action.CLOUD, DataSource.CLOUD,
                     bottlenecks_addressed=(5,))

    def test_cloud_action_must_serve_from_cloud(self):
        with pytest.raises(ValueError):
            Decision(Action.CLOUD, DataSource.ORIGINAL)

    def test_bandwidth_and_terminal_flags(self):
        cloud = Decision(Action.CLOUD, DataSource.CLOUD)
        assert cloud.uses_cloud_bandwidth and cloud.is_terminal
        direct = Decision(Action.USER_DEVICE, DataSource.ORIGINAL)
        assert not direct.uses_cloud_bandwidth
        pending = Decision(Action.CLOUD_PREDOWNLOAD, DataSource.CLOUD)
        assert not pending.is_terminal


class TestCookieJar:
    def test_merge_fills_gaps_from_previous_visit(self):
        jar = CookieJar()
        jar.remember(ctx(bandwidth=mbps(10.0), ap=MIWIFI_DEFAULT))
        merged = jar.merge(UserContext("u1", UNICOM_IP, None, None))
        assert merged.access_bandwidth == mbps(10.0)
        assert merged.smart_ap is MIWIFI_DEFAULT

    def test_fresh_values_win_and_refresh(self):
        jar = CookieJar()
        jar.remember(ctx(bandwidth=mbps(10.0)))
        merged = jar.merge(ctx(bandwidth=mbps(2.0), ap=None))
        assert merged.access_bandwidth == mbps(2.0)
        assert jar.recall("u1").access_bandwidth == mbps(2.0)

    def test_unknown_user_passes_through(self):
        jar = CookieJar()
        context = ctx(user="new")
        assert jar.merge(context) == context
        assert len(jar) == 1


class TestBottleneckDetector:
    def test_b1_low_bandwidth(self):
        detector = BottleneckDetector()
        assert detector.bottleneck1_risk(ctx(bandwidth=kbps(100.0)))
        assert not detector.bottleneck1_risk(ctx(bandwidth=mbps(4.0)))

    def test_b1_outside_major_isps(self):
        detector = BottleneckDetector()
        assert detector.bottleneck1_risk(ctx(ip=OTHER_IP,
                                             bandwidth=mbps(10.0)))

    def test_b1_unknown_bandwidth_in_major_isp_is_fine(self):
        detector = BottleneckDetector()
        assert not detector.bottleneck1_risk(ctx(bandwidth=None))

    def test_b4_ntfs_flash_on_fast_line(self):
        detector = BottleneckDetector()
        assert detector.bottleneck4_risk(ctx(ap=NEWIFI_NTFS,
                                             bandwidth=mbps(20.0)))

    def test_b4_not_on_slow_line(self):
        # Below 0.93 MBps even the worst write path keeps up (paper 6.1).
        detector = BottleneckDetector()
        assert not detector.bottleneck4_risk(
            ctx(ap=NEWIFI_NTFS, bandwidth=mbps(4.0)))

    def test_b4_good_storage_is_safe(self):
        detector = BottleneckDetector()
        assert not detector.bottleneck4_risk(
            ctx(ap=NEWIFI_EXT4_HDD, bandwidth=mbps(20.0)))
        assert not detector.bottleneck4_risk(
            ctx(ap=MIWIFI_DEFAULT, bandwidth=mbps(20.0)))

    def test_b4_without_ap_is_moot(self):
        detector = BottleneckDetector()
        assert not detector.bottleneck4_risk(ctx(ap=None))

    def test_b4_unknown_bandwidth_assumes_fast_line(self):
        detector = BottleneckDetector()
        assert detector.bottleneck4_risk(ctx(ap=NEWIFI_NTFS,
                                             bandwidth=None))


class TestFigure15Machine:
    """Each leaf of the decision diagram."""

    def test_highly_popular_p2p_with_b4_goes_to_user_device(self):
        odr = OdrMiddleware(make_db(popularity=200))
        decision = odr.decide(ctx(ap=NEWIFI_NTFS), "file",
                              Protocol.BITTORRENT)
        assert decision.action is Action.USER_DEVICE
        assert decision.data_source is DataSource.ORIGINAL
        assert set(decision.bottlenecks_addressed) == {2, 4}

    def test_highly_popular_p2p_without_b4_uses_the_ap(self):
        odr = OdrMiddleware(make_db(popularity=200))
        decision = odr.decide(ctx(ap=NEWIFI_EXT4_HDD), "file",
                              Protocol.EMULE)
        assert decision.action is Action.SMART_AP
        assert decision.data_source is DataSource.ORIGINAL
        assert 2 in decision.bottlenecks_addressed

    def test_highly_popular_p2p_without_ap_goes_direct(self):
        odr = OdrMiddleware(make_db(popularity=200))
        decision = odr.decide(ctx(ap=None), "file", Protocol.BITTORRENT)
        assert decision.action is Action.USER_DEVICE
        assert decision.data_source is DataSource.ORIGINAL

    def test_highly_popular_http_falls_back_on_the_cloud(self):
        odr = OdrMiddleware(make_db(popularity=200, cached=True))
        decision = odr.decide(ctx(), "file", Protocol.HTTP)
        assert decision.action is Action.CLOUD
        assert 2 in decision.bottlenecks_addressed

    def test_cached_with_b1_stages_through_the_ap(self):
        odr = OdrMiddleware(make_db(popularity=5, cached=True))
        decision = odr.decide(ctx(bandwidth=kbps(80.0)), "file",
                              Protocol.BITTORRENT)
        assert decision.action is Action.CLOUD_THEN_SMART_AP
        assert 1 in decision.bottlenecks_addressed

    def test_cached_with_b1_but_no_ap_still_uses_cloud(self):
        odr = OdrMiddleware(make_db(popularity=5, cached=True))
        decision = odr.decide(ctx(bandwidth=kbps(80.0), ap=None),
                              "file", Protocol.BITTORRENT)
        assert decision.action is Action.CLOUD

    def test_cached_healthy_path_fetches_from_cloud(self):
        odr = OdrMiddleware(make_db(popularity=5, cached=True))
        decision = odr.decide(ctx(bandwidth=mbps(8.0)), "file",
                              Protocol.HTTP)
        assert decision.action is Action.CLOUD

    def test_uncached_unpopular_waits_for_cloud_predownload(self):
        odr = OdrMiddleware(make_db(popularity=5, cached=False))
        decision = odr.decide(ctx(), "file", Protocol.BITTORRENT)
        assert decision.action is Action.CLOUD_PREDOWNLOAD
        assert 3 in decision.bottlenecks_addressed
        assert not decision.is_terminal

    def test_reask_after_successful_predownload(self):
        odr = OdrMiddleware(make_db(popularity=5, cached=True))
        decision = odr.decide_after_predownload(ctx(bandwidth=mbps(8.0)),
                                                "file", success=True)
        assert decision.action is Action.CLOUD

    def test_reask_after_successful_predownload_with_b1(self):
        odr = OdrMiddleware(make_db(popularity=5, cached=True))
        decision = odr.decide_after_predownload(
            ctx(bandwidth=kbps(60.0)), "file", success=True)
        assert decision.action is Action.CLOUD_THEN_SMART_AP

    def test_reask_after_failed_predownload_notifies(self):
        odr = OdrMiddleware(make_db(popularity=5))
        decision = odr.decide_after_predownload(ctx(), "file",
                                                success=False)
        assert decision.action is Action.NOTIFY_FAILURE

    def test_unknown_file_is_treated_as_unpopular(self):
        odr = OdrMiddleware(ContentDatabase())
        decision = odr.decide(ctx(), "never-seen", Protocol.BITTORRENT)
        assert decision.action is Action.CLOUD_PREDOWNLOAD
