"""Tests for download sessions and the stagnation-timeout rule."""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.sim.clock import HOUR, kbps
from repro.transfer.protocols import Protocol
from repro.transfer.session import (
    DownloadSession,
    MAX_SESSION_DURATION,
    STAGNATION_TIMEOUT,
    SessionLimits,
)
from repro.transfer.source import (
    CAUSE_INSUFFICIENT_SEEDS,
    HOME_VANTAGE,
    HttpFtpSource,
    P2PSwarmSource,
)
from repro.transfer.swarm import Swarm


def reliable_source(rate_median=kbps(200.0)):
    return HttpFtpSource(drop_probability=0.0, rate_median=rate_median,
                         rate_sigma=0.0)


def dead_source():
    return P2PSwarmSource(Swarm("dead", 0.0))


class TestSessionLimits:
    def test_effective_cap_is_min_of_positive_caps(self):
        limits = SessionLimits(rate_caps=(100.0, 50.0, 0.0))
        assert limits.effective_cap() == 50.0

    def test_no_caps_means_unbounded(self):
        assert SessionLimits().effective_cap() == float("inf")


class TestSuccessfulSession:
    def test_duration_is_size_over_rate(self):
        session = DownloadSession(reliable_source(), 1e6, HOME_VANTAGE,
                                  mid_failure_probability=0.0)
        outcome = session.simulate(np.random.default_rng(0))
        assert outcome.success
        assert outcome.average_rate == pytest.approx(kbps(200.0))
        assert outcome.duration == pytest.approx(1e6 / kbps(200.0))
        assert outcome.bytes_obtained == 1e6
        assert outcome.completed_fraction == 1.0

    def test_rate_caps_bind(self):
        limits = SessionLimits(rate_caps=(kbps(50.0),))
        session = DownloadSession(reliable_source(), 1e6, HOME_VANTAGE,
                                  limits=limits,
                                  mid_failure_probability=0.0)
        outcome = session.simulate(np.random.default_rng(1))
        assert outcome.average_rate == pytest.approx(kbps(50.0))

    def test_peak_rate_at_least_average(self):
        session = DownloadSession(reliable_source(), 1e6, HOME_VANTAGE,
                                  mid_failure_probability=0.0)
        for seed in range(20):
            outcome = session.simulate(np.random.default_rng(seed))
            assert outcome.peak_rate >= outcome.average_rate

    def test_traffic_includes_overhead(self):
        session = DownloadSession(reliable_source(), 1e6, HOME_VANTAGE,
                                  mid_failure_probability=0.0)
        outcome = session.simulate(np.random.default_rng(2))
        assert 1.07e6 <= outcome.traffic <= 1.10e6

    def test_p2p_traffic_is_heavier(self):
        swarm_source = P2PSwarmSource(Swarm("hot", 1000.0))
        session = DownloadSession(swarm_source, 1e6, HOME_VANTAGE,
                                  mid_failure_probability=0.0)
        outcome = session.simulate(np.random.default_rng(3))
        assert outcome.success
        assert 1.5e6 <= outcome.traffic <= 2.5e6


class TestFailures:
    def test_dead_source_stalls_for_the_stagnation_timeout(self):
        session = DownloadSession(dead_source(), 1e8, HOME_VANTAGE)
        outcome = session.simulate(np.random.default_rng(4))
        assert not outcome.success
        assert outcome.failure_cause == CAUSE_INSUFFICIENT_SEEDS
        assert STAGNATION_TIMEOUT <= outcome.duration <= \
            1.25 * STAGNATION_TIMEOUT
        assert outcome.bytes_obtained < 1e6   # a trickle at most

    def test_mid_failure_yields_partial_bytes(self):
        session = DownloadSession(reliable_source(), 1e7, HOME_VANTAGE,
                                  mid_failure_probability=1.0)
        outcome = session.simulate(np.random.default_rng(5))
        assert not outcome.success
        assert 0.0 < outcome.bytes_obtained < 1e7
        assert outcome.duration > STAGNATION_TIMEOUT

    def test_too_slow_to_finish_becomes_a_failure(self):
        # 4 GB at 2 KBps needs ~23 days >> the 7-day session bound.
        session = DownloadSession(reliable_source(kbps(2.0)), 4e9,
                                  HOME_VANTAGE,
                                  mid_failure_probability=0.0)
        outcome = session.simulate(np.random.default_rng(6))
        assert not outcome.success
        assert outcome.duration == pytest.approx(MAX_SESSION_DURATION)
        assert outcome.bytes_obtained < 4e9

    def test_failure_traffic_proportional_to_partial_bytes(self):
        session = DownloadSession(reliable_source(), 1e7, HOME_VANTAGE,
                                  mid_failure_probability=1.0)
        outcome = session.simulate(np.random.default_rng(7))
        fraction = outcome.bytes_obtained / 1e7
        assert outcome.traffic <= 1.10 * 1e7 * fraction + 1.0


class TestValidationAndProcessForm:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DownloadSession(reliable_source(), -1.0, HOME_VANTAGE)

    def test_run_yields_duration_on_the_simulator(self):
        sim = Simulator()
        session = DownloadSession(reliable_source(), 1e6, HOME_VANTAGE,
                                  mid_failure_probability=0.0)
        process = sim.process(session.run(np.random.default_rng(8)))
        sim.run()
        outcome = process.result
        assert outcome.success
        assert sim.now == pytest.approx(outcome.duration)

    def test_simulate_is_deterministic_given_rng(self):
        session = DownloadSession(reliable_source(), 1e6, HOME_VANTAGE)
        a = session.simulate(np.random.default_rng(9))
        b = session.simulate(np.random.default_rng(9))
        assert a.duration == b.duration
        assert a.traffic == b.traffic
