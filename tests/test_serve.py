"""Tests for repro.serve: the asyncio serving tier.

The load-bearing properties:

* real HTTP round trips: keep-alive reuse, /decide, /healthz, /metrics,
  404s, 405s, malformed requests;
* bounded admission: a saturated server sheds with 503 + Retry-After,
  and the obs counters account for every request (admitted + rejected
  == sent);
* graceful drain: in-flight requests finish, idle keep-alive
  connections are closed, the server stops accepting;
* same-tick batching coalesces concurrent /decide arrivals into fewer
  handle_batch passes without changing any response;
* the fault-plan chaos gate injects 500s during (and only during) its
  windows.
"""

import http.client
import json
import threading
import time

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.obs import MetricsRegistry
from repro.serve import (
    AdmissionController,
    AsyncOdrServer,
    AsyncServerThread,
    endpoint_label,
)
from repro.serve.chaos import ServeChaos, WorkerChaos
from repro.faults.injector import FaultInjector

DECIDE = ("/decide?link=http%3A%2F%2Forigin%2Ffile.bin"
          "&popularity=500&bandwidth_mbps=20")


def get(host, port, path, timeout=5.0):
    connection = http.client.HTTPConnection(host, port,
                                            timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), \
            response.read()
    finally:
        connection.close()


@pytest.fixture()
def live_server():
    metrics = MetricsRegistry()
    server = AsyncOdrServer(metrics=metrics, max_inflight=32)
    with AsyncServerThread(server) as thread:
        yield server, thread, metrics


class TestEndpointLabel:
    def test_known_endpoints(self):
        assert endpoint_label("/decide?link=x") == "/decide"
        assert endpoint_label("/healthz") == "/healthz"
        assert endpoint_label("/metrics") == "/metrics"
        assert endpoint_label("/") == "/"
        assert endpoint_label("") == "/"

    def test_unknown_collapses_to_other(self):
        assert endpoint_label("/nope") == "other"
        assert endpoint_label("/a/b/c?d=e") == "other"


class TestHTTP:
    def test_healthz(self, live_server):
        server, thread, _metrics = live_server
        status, _headers, body = get(server.host, server.port,
                                     "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_decide_round_trip(self, live_server):
        server, _thread, _metrics = live_server
        status, headers, body = get(server.host, server.port, DECIDE)
        assert status == 200
        payload = json.loads(body)
        assert payload["action"]
        assert payload["data_source"]
        assert "Set-Cookie" in headers

    def test_front_page_and_404(self, live_server):
        server, _thread, _metrics = live_server
        status, _headers, body = get(server.host, server.port, "/")
        assert status == 200 and b"<form" in body
        status, _headers, _body = get(server.host, server.port,
                                      "/nothing-here")
        assert status == 404

    def test_metrics_endpoint_renders_prometheus(self, live_server):
        server, _thread, _metrics = live_server
        get(server.host, server.port, "/healthz")
        status, headers, body = get(server.host, server.port,
                                    "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"repro_serve_requests_total" in body

    def test_keep_alive_reuses_one_connection(self, live_server):
        server, _thread, _metrics = live_server
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=5.0)
        try:
            for _ in range(5):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                assert not response.will_close
                response.read()
            assert server.connections == 1
        finally:
            connection.close()

    def test_post_is_405(self, live_server):
        server, _thread, _metrics = live_server
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=5.0)
        try:
            connection.request("POST", "/decide", body=b"x")
            assert connection.getresponse().status == 405
        finally:
            connection.close()

    def test_port_zero_reports_bound_port(self, live_server):
        server, _thread, _metrics = live_server
        assert server.port != 0


class TestAdmissionController:
    def test_over_cap_is_rejected_and_counted(self):
        metrics = MetricsRegistry()
        admission = AdmissionController(2, metrics=metrics)
        assert admission.try_admit("/decide")
        assert admission.try_admit("/decide")
        assert not admission.try_admit("/decide")
        admitted = metrics.counter("repro_serve_admitted_total",
                                   endpoint="/decide").value
        rejected = metrics.counter("repro_serve_rejected_total",
                                   endpoint="/decide",
                                   reason="saturated").value
        assert (admitted, rejected) == (2, 1)
        admission.release("/decide", 0.01, 200)
        assert admission.try_admit("/decide")

    def test_retry_after_tracks_ewma_and_clamps(self):
        admission = AdmissionController(4)
        assert admission.retry_after() >= 1
        for _ in range(4):
            admission.try_admit("/decide")
        for _ in range(10):
            admission.release("/decide", 60.0, 200)
            admission.try_admit("/decide")
        assert admission.retry_after() <= 30

    def test_shed_body_is_json_with_retry_after(self):
        status, body, headers = AdmissionController(1).shed_body()
        assert status == 503
        assert "Retry-After" in headers
        assert int(headers["Retry-After"]) >= 1
        assert "retry_after_seconds" in json.loads(body)


class TestSaturation:
    def test_saturated_server_sheds_503_with_retry_after(self):
        """Requests past max_inflight get 503 + Retry-After while a
        slow request holds the only slot."""
        metrics = MetricsRegistry()
        server = AsyncOdrServer(metrics=metrics, max_inflight=1,
                                batch=False)
        release = threading.Event()
        original = server.app.handle

        def slow_handle(path, cookie=None, deadline=None):
            if path.startswith("/decide"):
                release.wait(timeout=10.0)
            return original(path, cookie)

        server.app.handle = slow_handle
        with AsyncServerThread(server) as thread:
            holder = threading.Thread(
                target=get,
                args=(server.host, server.port, DECIDE),
                kwargs={"timeout": 15.0}, daemon=True)
            holder.start()
            deadline = time.monotonic() + 5.0
            while server.inflight_requests == 0 \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            assert server.inflight_requests == 1

            status, headers, body = get(server.host, server.port,
                                        DECIDE)
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
            assert "error" in json.loads(body)
            release.set()
            holder.join(timeout=10.0)
            # Slot freed: the next request is admitted again.
            status, _headers, _body = get(server.host, server.port,
                                          DECIDE)
            assert status == 200

        admitted = metrics.counter("repro_serve_admitted_total",
                                   endpoint="/decide").value
        rejected = metrics.counter("repro_serve_rejected_total",
                                   endpoint="/decide",
                                   reason="saturated").value
        sent = metrics.counter("repro_serve_requests_total",
                               endpoint="/decide").value
        assert admitted == 2
        assert rejected == 1
        assert admitted + rejected == sent == 3

    def test_admin_control_plane_bypasses_admission(self):
        """A saturated data plane must not starve supervision: the
        admin listener answers /healthz 200 and serves /statz while
        the only data slot is held -- the shed counters it exposes are
        the elastic controller's scale-up signal, so they have to be
        readable exactly when the worker is refusing data traffic."""
        metrics = MetricsRegistry()
        server = AsyncOdrServer(metrics=metrics, max_inflight=1,
                                batch=False, admin_port=0)
        release = threading.Event()
        original = server.app.handle

        def slow_handle(path, cookie=None, deadline=None):
            if path.startswith("/decide"):
                release.wait(timeout=10.0)
            return original(path, cookie)

        server.app.handle = slow_handle
        with AsyncServerThread(server):
            holder = threading.Thread(
                target=get,
                args=(server.host, server.port, DECIDE),
                kwargs={"timeout": 15.0}, daemon=True)
            holder.start()
            deadline = time.monotonic() + 5.0
            while server.inflight_requests == 0 \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            assert server.inflight_requests == 1
            # Data port: full, sheds.
            status, _headers, _body = get(server.host, server.port,
                                          DECIDE)
            assert status == 503
            # Admin port: control plane, never queued behind data.
            status, _headers, _body = get(server.host,
                                          server.admin_port,
                                          "/healthz")
            assert status == 200
            status, _headers, body = get(server.host,
                                         server.admin_port, "/statz")
            assert status == 200
            stats = json.loads(body)
            assert stats["sheds"] >= 1
            assert stats["inflight"] == 1
            release.set()
            holder.join(timeout=10.0)
        # Admin traffic holds no slot, so it neither admits nor sheds:
        # the accounting invariant stays a data-plane property.
        admitted = metrics.counter("repro_serve_admitted_total",
                                   endpoint="/healthz").value
        assert admitted == 0

    def test_obs_accounts_for_every_request(self, live_server):
        server, _thread, metrics = live_server
        for _ in range(7):
            get(server.host, server.port, DECIDE)
        for _ in range(3):
            get(server.host, server.port, "/healthz")
        for endpoint, count in (("/decide", 7), ("/healthz", 3)):
            sent = metrics.counter("repro_serve_requests_total",
                                   endpoint=endpoint).value
            admitted = metrics.counter("repro_serve_admitted_total",
                                       endpoint=endpoint).value
            ok = metrics.counter("repro_serve_responses_total",
                                 endpoint=endpoint,
                                 status="2xx").value
            assert sent == admitted == ok == count
        assert metrics.gauge("repro_serve_inflight").value == 0


class TestDrain:
    def test_drain_finishes_inflight_and_stops_accepting(self):
        server = AsyncOdrServer(max_inflight=8, batch=False)
        release = threading.Event()
        original = server.app.handle

        def slow_handle(path, cookie=None, deadline=None):
            if path.startswith("/decide"):
                release.wait(timeout=10.0)
            return original(path, cookie)

        server.app.handle = slow_handle
        thread = AsyncServerThread(server)
        thread.start()
        host, port = server.host, server.port
        results = []
        inflight = threading.Thread(
            target=lambda: results.append(
                get(host, port, DECIDE, timeout=15.0)),
            daemon=True)
        inflight.start()
        deadline = time.monotonic() + 5.0
        while server.inflight_requests == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.005)
        assert server.inflight_requests == 1

        stopper = threading.Thread(target=thread.stop, daemon=True)
        stopper.start()
        time.sleep(0.05)
        release.set()
        stopper.join(timeout=10.0)
        inflight.join(timeout=10.0)
        assert not stopper.is_alive()
        assert results and results[0][0] == 200
        assert thread.drained
        with pytest.raises(OSError):
            get(host, port, "/healthz", timeout=0.5)

    def test_drain_closes_idle_keepalive_connections(self):
        server = AsyncOdrServer()
        thread = AsyncServerThread(server)
        thread.start()
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=5.0)
        connection.request("GET", "/healthz")
        connection.getresponse().read()
        assert server.connections == 1
        thread.stop()
        assert thread.drained
        assert server.connections == 0
        connection.close()


class TestBatching:
    def test_batching_coalesces_without_changing_responses(self):
        metrics = MetricsRegistry()
        server = AsyncOdrServer(metrics=metrics, max_inflight=64,
                                batch=True)
        with AsyncServerThread(server):
            barrier = threading.Barrier(8)
            results = []
            lock = threading.Lock()

            def fire():
                barrier.wait(timeout=5.0)
                result = get(server.host, server.port, DECIDE)
                with lock:
                    results.append(result)

            threads = [threading.Thread(target=fire, daemon=True)
                       for _ in range(8)]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=10.0)
        assert len(results) == 8
        assert all(status == 200 for status, _h, _b in results)
        assert server.batcher is not None
        assert server.batcher.batched_requests == 8
        assert server.batcher.batches <= 8
        assert server.batcher.mean_batch_size >= 1.0


class TestChaos:
    def test_chaos_window_injects_500s(self):
        plan = FaultPlan("crash-now", 1, [FaultSpec("server_crash", "*",
                                                    0.0, 3600.0)])
        metrics = MetricsRegistry()
        chaos = ServeChaos(FaultInjector(plan), clock=lambda: 0.0,
                           metrics=metrics)
        server = AsyncOdrServer(metrics=metrics, chaos=chaos)
        with AsyncServerThread(server):
            status, _headers, body = get(server.host, server.port,
                                         DECIDE)
            healthz, _h, _b = get(server.host, server.port,
                                  "/healthz")
        assert status == 500
        assert "injected fault" in json.loads(body)["detail"]
        # Readiness reflects the fault window: /healthz steers traffic
        # away while /decide is failing.
        assert healthz == 503
        assert metrics.counter(
            "repro_serve_chaos_failures_total").value >= 1

    def test_outside_window_is_clean(self):
        plan = FaultPlan("crash-later", 1,
                         [FaultSpec("server_crash", "*",
                                    7200.0, 3600.0)])
        chaos = ServeChaos(FaultInjector(plan), clock=lambda: 0.0)
        server = AsyncOdrServer(chaos=chaos)
        with AsyncServerThread(server):
            status, _headers, _body = get(server.host, server.port,
                                          DECIDE)
            healthz, _h, _b = get(server.host, server.port,
                                  "/healthz")
        assert status == 200
        assert healthz == 200


def get_with_headers(host, port, path, headers, timeout=5.0):
    connection = http.client.HTTPConnection(host, port,
                                            timeout=timeout)
    try:
        connection.request("GET", path, headers=headers)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), \
            response.read()
    finally:
        connection.close()


class TestDeadline:
    """X-Deadline-Ms propagation: hopeless requests are shed 504."""

    def test_exhausted_budget_sheds_504_at_admission(self,
                                                     live_server):
        server, _thread, metrics = live_server
        # Burn the EWMA up so any zero budget is hopeless even on an
        # idle server: predicted wait is inflight * ewma = 0 on idle,
        # so use a negative-ish budget of 0 and one in-flight isn't
        # needed -- 0 remaining > 0 predicted is false.
        status, _headers, body = get_with_headers(
            server.host, server.port, DECIDE,
            {"X-Deadline-Ms": "0"})
        assert status == 504
        payload = json.loads(body)
        assert payload["error"] == "deadline exceeded"
        assert payload["stage"] == "admission"
        assert metrics.counter("repro_serve_deadline_sheds_total",
                               stage="admission").value == 1
        assert metrics.counter("repro_serve_rejected_total",
                               endpoint="/decide",
                               reason="deadline").value == 1

    def test_generous_budget_is_served(self, live_server):
        server, _thread, metrics = live_server
        status, _headers, _body = get_with_headers(
            server.host, server.port, DECIDE,
            {"X-Deadline-Ms": "5000"})
        assert status == 200
        assert metrics.counter("repro_serve_deadline_sheds_total",
                               stage="admission").value == 0

    def test_accounting_invariant_holds_with_deadline_sheds(
            self, live_server):
        server, _thread, metrics = live_server
        for _ in range(4):
            get_with_headers(server.host, server.port, DECIDE,
                             {"X-Deadline-Ms": "0"})
        for _ in range(3):
            get(server.host, server.port, DECIDE)
        sent = metrics.counter("repro_serve_requests_total",
                               endpoint="/decide").value
        admitted = metrics.counter("repro_serve_admitted_total",
                                   endpoint="/decide").value
        rejected = sum(
            metrics.counter("repro_serve_rejected_total",
                            endpoint="/decide",
                            reason=reason).value
            for reason in ("deadline", "saturated"))
        assert sent == 7
        assert admitted + rejected == sent

    def test_malformed_budget_is_ignored(self, live_server):
        server, _thread, _metrics = live_server
        status, _headers, _body = get_with_headers(
            server.host, server.port, DECIDE,
            {"X-Deadline-Ms": "soon"})
        assert status == 200

    def test_batcher_expires_entries_before_dispatch(self):
        import asyncio

        from repro.cloud.database import ContentDatabase
        from repro.core.webapp import OdrWebApp
        from repro.serve.batching import DecisionBatcher

        async def scenario():
            metrics = MetricsRegistry()
            batcher = DecisionBatcher(
                OdrWebApp(ContentDatabase()), metrics=metrics)
            expired = batcher.submit(DECIDE, "",
                                     deadline=time.monotonic() - 1.0)
            live = batcher.submit(DECIDE, "",
                                  deadline=time.monotonic() + 30.0)
            responses = await asyncio.gather(expired, live)
            return responses, batcher, metrics

        responses, batcher, metrics = asyncio.run(scenario())
        assert responses[0][0] == 504
        assert json.loads(responses[0][2])["stage"] == "batch"
        assert responses[1][0] == 200
        assert batcher.expired == 1
        assert batcher.batched_requests == 1
        assert metrics.counter("repro_serve_deadline_sheds_total",
                               stage="batch").value == 1

    def test_admission_deadline_predicate(self):
        controller = AdmissionController(max_inflight=4)
        # Idle controller: zero predicted wait, any positive budget ok.
        assert controller.deadline_allows(0.010)
        assert not controller.deadline_allows(0.0)
        # Saturate the EWMA: 2 in flight at 1 s each predicts 2 s.
        controller.try_admit("/decide")
        controller.try_admit("/decide")
        controller._ewma_seconds = 1.0
        assert controller.predicted_wait_seconds() == \
            pytest.approx(2.0)
        assert not controller.deadline_allows(1.5)
        assert controller.deadline_allows(2.5)


class TestReadiness:
    """/healthz is a readiness probe, not just liveness."""

    def test_healthz_503_during_fault_window(self):
        plan = FaultPlan("crash-now", 1,
                         [FaultSpec("server_crash", "*",
                                    0.0, 3600.0)])
        chaos = ServeChaos(FaultInjector(plan), clock=lambda: 0.0)
        server = AsyncOdrServer(chaos=chaos)
        with AsyncServerThread(server):
            status, headers, body = get(server.host, server.port,
                                        "/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload == {"status": "fault-window", "ready": False}
        assert headers.get("Retry-After") == "1"

    def test_healthz_503_while_draining(self):
        # A draining server stops accepting, so the 503 is what an
        # in-flight keep-alive request sees; drive _respond directly.
        import asyncio
        server = AsyncOdrServer()
        server._draining = True

        async def scenario():
            return await server._respond("/healthz", "")

        status, _ctype, body, _cookie, headers = \
            asyncio.run(scenario())
        assert status == 503
        assert json.loads(body)["status"] == "draining"
        assert headers.get("Retry-After") == "1"

    def test_admin_listener_serves_healthz(self):
        server = AsyncOdrServer(admin_port=0)
        with AsyncServerThread(server):
            assert server.admin_port is not None
            assert server.admin_port != server.port
            status, _headers, body = get(server.host,
                                         server.admin_port,
                                         "/healthz")
            main_status, _h, _b = get(server.host, server.port,
                                      "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        assert main_status == 200


class TestWedgeInvariants:
    """The accounting invariant survives every serve-domain wedge.

    ``admitted + rejected == sent`` must hold whatever a process-state
    fault does to connections: requests a wedge swallows before the
    counting point (a blackholed park, a mid-request reset) never
    increment ``requests_total`` either, so the counted population
    stays balanced; requests that do get counted are either admitted
    or rejected with a named reason (``saturated`` -> 503,
    ``deadline`` -> 504).
    """

    @staticmethod
    def _wedged_server(kind, severity=1.0, **server_kwargs):
        plan = FaultPlan(f"wedge-{kind}", 1,
                         [FaultSpec(kind, "serve:worker-0",
                                    0.0, 1.0, severity=severity)])
        metrics = MetricsRegistry()
        # Pin the chaos clock at the window's open so the wedge is
        # adopted from the first request (adoption needs
        # born <= start <= now, and a real clock puts born just past
        # a start of 0).
        chaos = WorkerChaos(FaultInjector(plan), 0, metrics=metrics,
                            clock=lambda: 0.0)
        server = AsyncOdrServer(metrics=metrics, worker_chaos=chaos,
                                **server_kwargs)
        return server, metrics

    @staticmethod
    def _accounting(metrics):
        sent = metrics.counter("repro_serve_requests_total",
                               endpoint="/decide").value
        admitted = metrics.counter("repro_serve_admitted_total",
                                   endpoint="/decide").value
        rejected = sum(
            metrics.counter("repro_serve_rejected_total",
                            endpoint="/decide", reason=reason).value
            for reason in ("saturated", "deadline"))
        return sent, admitted, rejected

    @pytest.mark.parametrize("kind", ["probe_blackhole", "conn_reset"])
    def test_swallowed_requests_stay_balanced(self, kind):
        server, metrics = self._wedged_server(kind)
        with AsyncServerThread(server, grace=0.5):
            for _ in range(3):
                with pytest.raises(OSError):
                    connection = http.client.HTTPConnection(
                        server.host, server.port, timeout=0.3)
                    try:
                        connection.request("GET", DECIDE)
                        connection.getresponse()
                    finally:
                        connection.close()
        sent, admitted, rejected = self._accounting(metrics)
        assert sent == 0          # swallowed before the counting point
        assert admitted + rejected == sent
        assert metrics.counter("repro_serve_wedges_total",
                               kind=kind).value == 1

    def test_slowloris_counts_and_balances(self):
        # A tiny severity scales the byte delay down so the test can
        # actually read the dribbled responses; the accounting path is
        # identical to the full-speed wedge.
        server, metrics = self._wedged_server("admin_slowloris",
                                              severity=0.001)
        with AsyncServerThread(server, grace=0.5):
            for _ in range(2):
                status, _headers, _body = get_with_headers(
                    server.host, server.port, DECIDE,
                    {"X-Deadline-Ms": "0"}, timeout=10.0)
                assert status == 504
            status, _headers, _body = get(server.host, server.port,
                                          DECIDE, timeout=10.0)
            assert status == 200
        sent, admitted, rejected = self._accounting(metrics)
        assert sent == 3
        assert admitted == 1
        assert rejected == 2
        assert admitted + rejected == sent
        assert metrics.counter("repro_serve_wedges_total",
                               kind="admin_slowloris").value == 1

    def test_correlated_kill_plan_leaves_data_path_clean(self):
        # correlated_kill is a supervisor-side kill, not a wedge: a
        # worker loaded with such a plan serves normally, and the mix
        # of 504s, 503s, and successes still balances.
        plan = FaultPlan("ck", 1,
                         [FaultSpec("correlated_kill", "serve:*",
                                    0.0, 1.0, count=2)])
        metrics = MetricsRegistry()
        chaos = WorkerChaos(FaultInjector(plan), 0, metrics=metrics)
        server = AsyncOdrServer(metrics=metrics, worker_chaos=chaos,
                                max_inflight=1, batch=False)
        release = threading.Event()
        original = server.app.handle

        def slow_handle(path, cookie=None, deadline=None):
            if path.startswith("/decide"):
                release.wait(timeout=10.0)
            return original(path, cookie)

        server.app.handle = slow_handle
        with AsyncServerThread(server) as thread:
            holder = threading.Thread(
                target=get, args=(server.host, server.port, DECIDE),
                kwargs={"timeout": 15.0}, daemon=True)
            holder.start()
            deadline = time.monotonic() + 5.0
            while server.inflight_requests == 0 \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            status_503, _h, _b = get(server.host, server.port, DECIDE)
            status_504, _h, _b = get_with_headers(
                server.host, server.port, DECIDE,
                {"X-Deadline-Ms": "0"})
            release.set()
            holder.join(timeout=10.0)
        assert status_503 == 503
        assert status_504 == 504
        sent, admitted, rejected = self._accounting(metrics)
        assert sent == 3
        assert admitted == 1
        assert rejected == 2
        assert admitted + rejected == sent
        assert metrics.counter("repro_serve_wedges_total",
                               kind="correlated_kill").value == 0
