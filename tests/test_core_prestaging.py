"""Tests for the pre-staging (water-filling) scheduler."""

import numpy as np
import pytest

from repro.core.prestaging import (
    DeferrableFlow,
    PrestagingScheduler,
    deferrable_from_flows,
)


class TestDeferrableFlow:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeferrableFlow("f", volume_bytes=0.0, release_time=0.0,
                           deadline=10.0)
        with pytest.raises(ValueError):
            DeferrableFlow("f", volume_bytes=1.0, release_time=10.0,
                           deadline=5.0)


class TestWaterFilling:
    def test_fills_the_trough_first(self):
        # Series: high, low, high. A flow windowed over all three bins
        # should pour into the middle.
        scheduler = PrestagingScheduler([10.0, 1.0, 10.0], bin_width=1.0)
        flow = DeferrableFlow("f", volume_bytes=4.0, release_time=0.0,
                              deadline=3.0)
        result = scheduler.schedule([flow])
        assert result.scheduled_series[1] == pytest.approx(5.0)
        assert result.scheduled_series[0] == pytest.approx(10.0)
        assert result.scheduled_series[2] == pytest.approx(10.0)

    def test_levels_rise_evenly_past_the_first_step(self):
        scheduler = PrestagingScheduler([0.0, 2.0, 4.0], bin_width=1.0)
        flow = DeferrableFlow("f", volume_bytes=6.0, release_time=0.0,
                              deadline=3.0)
        result = scheduler.schedule([flow])
        # Pour 6 B: level ends at 4 exactly (bins 0 and 1 fill to 4).
        assert result.scheduled_series == pytest.approx([4.0, 4.0, 4.0])

    def test_overflow_spreads_evenly_when_window_is_level(self):
        scheduler = PrestagingScheduler([5.0, 5.0], bin_width=1.0)
        flow = DeferrableFlow("f", volume_bytes=4.0, release_time=0.0,
                              deadline=2.0)
        result = scheduler.schedule([flow])
        assert result.scheduled_series == pytest.approx([7.0, 7.0])

    def test_volume_is_conserved(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0, 10, 48)
        scheduler = PrestagingScheduler(base, bin_width=300.0)
        flows = [DeferrableFlow(f"f{i}",
                                volume_bytes=rng.uniform(1e3, 1e5),
                                release_time=rng.uniform(0, 6000),
                                deadline=rng.uniform(8000, 14000))
                 for i in range(20)]
        result = scheduler.schedule(flows)
        poured = (result.scheduled_series - result.baseline_series) \
            .sum() * 300.0
        assert poured == pytest.approx(
            sum(flow.volume_bytes for flow in flows), rel=1e-6)

    def test_window_is_respected(self):
        scheduler = PrestagingScheduler([0.0] * 10, bin_width=1.0)
        flow = DeferrableFlow("f", volume_bytes=5.0, release_time=3.0,
                              deadline=6.0)
        result = scheduler.schedule([flow])
        for index, value in enumerate(result.scheduled_series):
            if index < 3 or index >= 6:
                assert value == 0.0

    def test_peak_reduction_on_a_diurnal_profile(self):
        # A peaky inelastic series plus elastic flows released at the
        # peak but deferrable to the trough: the peak must drop.
        base = np.array([2.0, 10.0, 2.0, 1.0] * 6)
        scheduler = PrestagingScheduler(base, bin_width=1.0)
        naive = base.copy()
        flows = []
        for i, peak_bin in enumerate(range(1, 24, 4)):
            flows.append(DeferrableFlow(
                f"f{i}", volume_bytes=3.0,
                release_time=float(peak_bin),
                deadline=float(min(peak_bin + 4, 24))))
            naive[peak_bin] += 3.0
        result = scheduler.schedule(flows)
        assert result.scheduled_peak < naive.max()
        assert result.peak_reduction >= 0.0

    def test_out_of_series_window_rejected(self):
        scheduler = PrestagingScheduler([1.0, 1.0], bin_width=1.0)
        flow = DeferrableFlow("f", volume_bytes=1.0, release_time=50.0,
                              deadline=60.0)
        with pytest.raises(ValueError):
            scheduler.schedule([flow])

    def test_scheduler_validation(self):
        with pytest.raises(ValueError):
            PrestagingScheduler([], bin_width=1.0)
        with pytest.raises(ValueError):
            PrestagingScheduler([1.0], bin_width=0.0)


class TestWaterFillingProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(base=st.lists(st.floats(min_value=0.0, max_value=20.0),
                         min_size=4, max_size=30),
           volumes=st.lists(st.floats(min_value=0.1, max_value=50.0),
                            min_size=1, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_never_worse_than_uniform_spreading(self, base, volumes):
        """Water-filling a flow over its window never yields a higher
        peak than spreading the same volume uniformly over the window
        (the naive schedule)."""
        import numpy as np
        scheduler = PrestagingScheduler(base, bin_width=1.0)
        flows = [DeferrableFlow(f"f{i}", volume_bytes=v,
                                release_time=0.0,
                                deadline=float(len(base)))
                 for i, v in enumerate(volumes)]
        result = scheduler.schedule(flows)
        uniform = np.asarray(base) + sum(volumes) / len(base)
        assert result.scheduled_peak <= uniform.max() + 1e-6

    @given(base=st.lists(st.floats(min_value=0.0, max_value=20.0),
                         min_size=4, max_size=30),
           volume=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=80, deadline=None)
    def test_single_flow_reaches_the_exact_water_level(self, base,
                                                       volume):
        import numpy as np
        scheduler = PrestagingScheduler(base, bin_width=1.0)
        flow = DeferrableFlow("f", volume_bytes=volume,
                              release_time=0.0,
                              deadline=float(len(base)))
        result = scheduler.schedule([flow])
        series = result.scheduled_series
        # Volume conserved exactly...
        poured = (series - np.asarray(base)).sum()
        assert poured == pytest.approx(volume, rel=1e-6)
        # ...and the filled bins share one level: every raised bin sits
        # at the max of the raised set.
        raised = series[series > np.asarray(base) + 1e-9]
        if len(raised) > 1:
            assert raised.max() - raised.min() < 1e-6


class TestFlowAdapter:
    def test_adapts_cloud_fetch_flows(self):
        from repro.cloud.system import FetchFlow
        flows = [FetchFlow(start=0.0, end=100.0, rate=1e5,
                           highly_popular=False),
                 FetchFlow(start=50.0, end=50.0, rate=1e5,
                           highly_popular=True),
                 FetchFlow(start=900.0, end=950.0, rate=1e5,
                           highly_popular=False)]
        deferrables, leftovers = deferrable_from_flows(
            flows, horizon=1000.0, slack=600.0)
        assert len(deferrables) == 1     # zero-duration flow dropped...
        assert deferrables[0].volume_bytes == pytest.approx(1e7)
        assert deferrables[0].deadline == 600.0
        # ...and the late flow whose window spills the horizon is a
        # leftover, not clipped.
        assert len(leftovers) == 1
        assert leftovers[0].start == 900.0
