"""Tests for storage devices, filesystems, and the write-path model."""

import pytest

from repro.storage import (
    Filesystem,
    SATA_HDD_1TB,
    SD_CARD_8GB,
    USB_FLASH_8GB,
    USB_HDD_5400,
    WritePath,
)
from repro.storage.device import DeviceKind, StorageDevice


class TestDevices:
    def test_hiwifi_sd_card_is_fat_only(self):
        assert SD_CARD_8GB.supports(Filesystem.FAT)
        assert not SD_CARD_8GB.supports(Filesystem.NTFS)
        assert not SD_CARD_8GB.supports(Filesystem.EXT4)

    def test_miwifi_sata_is_factory_ext4(self):
        assert SATA_HDD_1TB.supports(Filesystem.EXT4)
        assert not SATA_HDD_1TB.supports(Filesystem.FAT)

    def test_usb_devices_support_all_filesystems(self):
        for device in (USB_FLASH_8GB, USB_HDD_5400):
            for filesystem in Filesystem:
                assert device.supports(filesystem)

    def test_flash_classification(self):
        assert DeviceKind.SD_CARD.is_flash
        assert DeviceKind.USB_FLASH.is_flash
        assert not DeviceKind.USB_HDD.is_flash
        assert not DeviceKind.SATA_HDD.is_flash

    def test_small_write_rate_requires_supported_fs(self):
        with pytest.raises(ValueError):
            SD_CARD_8GB.small_write_rate(Filesystem.NTFS)

    def test_device_validation(self):
        with pytest.raises(ValueError):
            StorageDevice("bad", DeviceKind.USB_FLASH, capacity=0.0,
                          max_write_rate=1.0, max_read_rate=1.0)
        with pytest.raises(ValueError):
            StorageDevice("bad", DeviceKind.USB_FLASH, capacity=1.0,
                          max_write_rate=1.0, max_read_rate=1.0,
                          allowed_filesystems=())

    def test_vendor_sheet_numbers(self):
        # Section 5.1's device spec sheet.
        assert SD_CARD_8GB.max_write_rate == 15e6
        assert SD_CARD_8GB.max_read_rate == 30e6
        assert USB_FLASH_8GB.max_write_rate == 10e6
        assert SATA_HDD_1TB.max_read_rate == 70e6


# The paper's Table 2, verbatim: (device, fs, cpu MHz) -> (MBps, iowait).
TABLE2_CASES = [
    (SD_CARD_8GB, Filesystem.FAT, 580.0, 2.37, 0.421),
    (SATA_HDD_1TB, Filesystem.EXT4, 1000.0, 2.37, 0.297),
    (USB_FLASH_8GB, Filesystem.FAT, 580.0, 2.12, 0.663),
    (USB_FLASH_8GB, Filesystem.NTFS, 580.0, 0.93, 0.151),
    (USB_FLASH_8GB, Filesystem.EXT4, 580.0, 2.13, 0.55),
    (USB_HDD_5400, Filesystem.FAT, 580.0, 2.37, 0.42),
    (USB_HDD_5400, Filesystem.NTFS, 580.0, 1.13, 0.098),
    (USB_HDD_5400, Filesystem.EXT4, 580.0, 2.37, 0.174),
]

NETWORK_RATE = 2.375e6   # the testbed ADSL goodput


class TestWritePathTable2:
    @pytest.mark.parametrize(
        "device,filesystem,cpu_mhz,paper_speed,paper_iowait",
        TABLE2_CASES,
        ids=[f"{d.kind.value}-{f.value}" for d, f, *_ in TABLE2_CASES])
    def test_max_speed_matches_paper(self, device, filesystem, cpu_mhz,
                                     paper_speed, paper_iowait):
        path = WritePath(device, filesystem, cpu_mhz)
        speed = path.achieved_rate(NETWORK_RATE) / 1e6
        assert speed == pytest.approx(paper_speed, rel=0.02)

    @pytest.mark.parametrize(
        "device,filesystem,cpu_mhz,paper_speed,paper_iowait",
        TABLE2_CASES,
        ids=[f"{d.kind.value}-{f.value}" for d, f, *_ in TABLE2_CASES])
    def test_iowait_matches_paper(self, device, filesystem, cpu_mhz,
                                  paper_speed, paper_iowait):
        path = WritePath(device, filesystem, cpu_mhz)
        iowait = path.iowait_ratio(NETWORK_RATE)
        assert iowait == pytest.approx(paper_iowait, rel=0.05)


class TestWritePathMechanics:
    def test_achieved_rate_never_exceeds_network(self):
        path = WritePath(USB_HDD_5400, Filesystem.EXT4, 580.0)
        assert path.achieved_rate(1e5) == 1e5

    def test_negative_network_rate_rejected(self):
        path = WritePath(USB_HDD_5400, Filesystem.EXT4, 580.0)
        with pytest.raises(ValueError):
            path.achieved_rate(-1.0)

    def test_unsupported_combination_rejected(self):
        with pytest.raises(ValueError):
            WritePath(SD_CARD_8GB, Filesystem.EXT4, 580.0)

    def test_cpu_mhz_must_be_positive(self):
        with pytest.raises(ValueError):
            WritePath(USB_FLASH_8GB, Filesystem.FAT, 0.0)

    def test_faster_cpu_raises_ntfs_ceiling(self):
        slow = WritePath(USB_FLASH_8GB, Filesystem.NTFS, 580.0)
        fast = WritePath(USB_FLASH_8GB, Filesystem.NTFS, 1160.0)
        assert fast.max_throughput > 1.5 * slow.max_throughput

    def test_cpu_and_io_busy_fractions_are_consistent(self):
        path = WritePath(USB_FLASH_8GB, Filesystem.FAT, 580.0)
        rate = path.max_throughput
        busy = path.cpu_busy_ratio(rate) + path.iowait_ratio(rate)
        # At the processing-limited rate the pipeline is saturated.
        assert busy == pytest.approx(1.0, rel=1e-6)

    def test_ntfs_is_cpu_bound_not_io_bound(self):
        path = WritePath(USB_FLASH_8GB, Filesystem.NTFS, 580.0)
        rate = path.max_throughput
        assert path.cpu_busy_ratio(rate) > 0.8
        assert path.iowait_ratio(rate) < 0.2
