"""Tests for the multi-backend ODR registry (``repro.backends``).

Covers the registry round-trip, unknown-name errors, bit-identity of
the legacy strategies resolved through the registry, the two new
backends (D2D, cooperative AP cache), the delay-aware policy's
ranking, fault-gated routing, per-request policy selection in the web
app, and shard/job invariance of the comparison scorecard.
"""

import json
from pathlib import Path

import pytest

from repro.backends import (
    Backend,
    BackendEstimate,
    BuildContext,
    CloudBackend,
    CooperativeApCache,
    CoopApCacheBackend,
    D2dBackend,
    DelayAwarePolicy,
    FaultGate,
    SmartApBackend,
    UnknownBackendError,
    UnknownPolicyError,
    UnknownStrategyError,
    backend_names,
    compose,
    create_backend,
    create_policy,
    policy_names,
    resolve_strategy,
    strategy_names,
)
from repro.backends import registry as registry_module
from repro.backends.base import UNREACHABLE_DELAY
from repro.backends.policies import _NO_AP_DIRECT
from repro.cloud.database import ContentDatabase
from repro.core.auxiliary import SmartApInfo, UserContext
from repro.core.decision import Action, DataSource, Decision
from repro.core.strategies import (
    AmsStrategy,
    CloudOnlyStrategy,
    FileSnapshot,
    OdrStrategy,
)
from repro.core.odr import OdrMiddleware
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.transfer.protocols import Protocol
from repro.workload.filetypes import FileType
from repro.workload.records import CatalogFile


def make_db(files):
    """A content database seeded with {file_id: (popularity, cached)}."""
    database = ContentDatabase()
    for file_id, (popularity, cached) in files.items():
        for when in range(popularity):
            database.record_request(file_id, 1e8, float(when))
        database.set_cached(file_id, cached)
    return database


def make_context(user_id="u1", bandwidth=4e6, ap=None):
    return UserContext(user_id=user_id, ip_address="1.2.3.4",
                       access_bandwidth=bandwidth, smart_ap=ap)


def hiwifi():
    from repro.ap.models import HIWIFI_1S
    return SmartApInfo.default_for(HIWIFI_1S)


class TestRegistryRoundTrip:
    def test_builtin_names_are_registered(self):
        assert backend_names() == ("cloud", "coop-ap", "d2d", "smart-ap")
        assert set(policy_names()) >= {
            "ams", "always-hybrid", "cloud-only", "delay-aware",
            "odr", "smart-ap-only"}
        assert strategy_names() == (
            "always-hybrid", "ams", "cloud-only", "delay-aware",
            "odr", "smart-ap-only")

    def test_register_create_and_unregister(self):
        from repro.backends.registry import register_backend, \
            register_policy

        @register_backend("test-null")
        class _NullBackend(Backend):
            name = "test-null"

            def __init__(self, build=None):
                pass

            def route(self, context, snapshot):
                return Decision(action=Action.CLOUD,
                                data_source=DataSource.CLOUD,
                                rationale="null")

        @register_policy("test-first")
        def _first_policy(build):
            class _First(DelayAwarePolicy):
                name = "test-first"
            return _First()

        try:
            assert "test-null" in backend_names()
            assert "test-first" in policy_names()
            backend = create_backend("test-null")
            assert backend.route(None, None).rationale == "null"
            assert create_policy("test-first").name == "test-first"
        finally:
            registry_module._BACKENDS.pop("test-null")
            registry_module._POLICIES.pop("test-first")
        assert "test-null" not in backend_names()

    def test_compose_builds_spec_backends_in_order(self):
        backends, policy = compose("delay-aware",
                                   database=ContentDatabase())
        assert [backend.name for backend in backends] == \
            ["coop-ap", "d2d", "smart-ap", "cloud"]
        assert policy.name == "delay-aware"

    def test_resolve_strategy_backend_override(self):
        strategy = resolve_strategy(
            "delay-aware", database=ContentDatabase(),
            backend_names=("d2d", "cloud"))
        assert [backend.name for backend in strategy.backends] == \
            ["d2d", "cloud"]
        assert strategy.policy.name == "delay-aware"

    def test_options_reach_the_factories(self):
        strategy = resolve_strategy("delay-aware",
                                    database=ContentDatabase(),
                                    deadline_seconds=60.0,
                                    d2d_neighbor_share=0.5)
        assert strategy.policy.deadline_seconds == 60.0
        d2d = [backend for backend in strategy.backends
               if backend.name == "d2d"][0]
        assert d2d.neighbor_share == 0.5


class TestUnknownNames:
    def test_unknown_backend_lists_known(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            create_backend("warp-drive")
        assert "cloud" in str(excinfo.value)
        assert isinstance(excinfo.value, ValueError)

    def test_unknown_policy_lists_known(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            create_policy("coin-flip")
        assert "odr" in str(excinfo.value)

    def test_unknown_strategy_lists_known(self):
        with pytest.raises(UnknownStrategyError) as excinfo:
            compose("warp")
        assert "delay-aware" in str(excinfo.value)

    def test_odr_policy_requires_a_database(self):
        with pytest.raises(ValueError, match="content database"):
            create_policy("odr", BuildContext())


class TestLegacyBitIdentity:
    """Registry-composed strategies reproduce the legacy decisions."""

    GRID_FILES = {
        "hot-cached": (200, True), "hot-raw": (150, False),
        "cold-cached": (3, True), "cold-raw": (1, False),
    }

    def contexts(self):
        return [make_context("plain", 4e6, None),
                make_context("fast-ap", 20e6, hiwifi()),
                make_context("slow", 0.5e6, hiwifi())]

    def decisions(self, strategy):
        rows = []
        for context in self.contexts():
            for file_id in self.GRID_FILES:
                for protocol in (Protocol.HTTP, Protocol.BITTORRENT):
                    decision = strategy.decide(context, file_id,
                                               protocol)
                    rows.append((context.user_id, file_id,
                                 protocol.value,
                                 decision.action.value,
                                 decision.data_source.value,
                                 decision.rationale))
        return rows

    @pytest.mark.parametrize("name,legacy", [
        ("cloud-only", lambda db: CloudOnlyStrategy(db)),
        ("ams", lambda db: AmsStrategy(db)),
        ("odr", lambda db: OdrStrategy(OdrMiddleware(db))),
    ])
    def test_resolved_equals_legacy_class(self, name, legacy):
        reference = self.decisions(legacy(make_db(self.GRID_FILES)))
        resolved = self.decisions(resolve_strategy(
            name, database=make_db(self.GRID_FILES)))
        assert resolved == reference

    def test_golden_digests_still_pin(self):
        from repro.perf import golden
        pinned = json.loads(
            (Path(__file__).parent / "data" /
             "golden_digests.json").read_text())
        for scenario in ("strategy_decisions", "odr_strategy_replay"):
            assert golden.SCENARIOS[scenario]() == pinned[scenario], \
                f"{scenario} drifted from its pinned digest"


class TestD2dBackend:
    def snapshot(self, demand, protocol=Protocol.BITTORRENT):
        return FileSnapshot(file_id="f", protocol=protocol,
                            popularity=int(demand), cached=False,
                            size=1e9, weekly_demand=float(demand))

    def test_needs_p2p_and_nearby_seeds(self):
        backend = D2dBackend()
        context = make_context()
        assert backend.available(context, self.snapshot(500))
        assert not backend.available(context, self.snapshot(5))
        assert not backend.available(
            context, self.snapshot(500, Protocol.HTTP))

    def test_route_is_the_d2d_action(self):
        decision = D2dBackend().route(make_context(),
                                      self.snapshot(500))
        assert decision.action is Action.D2D
        assert decision.data_source is DataSource.PEERS
        assert decision.bottlenecks_addressed == (1, 2)

    def test_estimate_is_free_for_the_cloud(self):
        estimate = D2dBackend().estimate(make_context(),
                                         self.snapshot(500))
        assert estimate.cloud_bytes == 0.0
        assert estimate.delay_seconds < UNREACHABLE_DELAY

    def test_estimate_unreachable_without_neighbors(self):
        estimate = D2dBackend().estimate(make_context(),
                                         self.snapshot(1))
        assert estimate.delay_seconds == UNREACHABLE_DELAY

    def test_neighbor_share_validated(self):
        with pytest.raises(ValueError):
            D2dBackend(neighbor_share=0.0)
        with pytest.raises(ValueError):
            D2dBackend(neighbor_share=1.5)


class TestCoopApCache:
    def catalog_rows(self):
        def row(file_id, size, demand):
            return CatalogFile(file_id=file_id, size=size,
                               file_type=FileType.VIDEO,
                               protocol=Protocol.BITTORRENT,
                               weekly_demand=demand,
                               source_url=f"magnet://o/{file_id}")
        return [row("huge-popular", 9e9, 1000),
                row("small-popular", 1e9, 500),
                row("small-mid", 1e9, 100),
                row("cold", 1e9, 1)]

    def test_from_catalog_greedy_skips_oversized(self):
        cache = CooperativeApCache.from_catalog(self.catalog_rows(),
                                                capacity_bytes=2.5e9)
        # The 9 GB head does not fit; the ranking continues past it.
        assert cache.resident_count == 2
        assert cache.admits(FileSnapshot("small-popular",
                                         Protocol.BITTORRENT))
        assert cache.admits(FileSnapshot("small-mid",
                                         Protocol.BITTORRENT))
        assert not cache.admits(FileSnapshot("huge-popular",
                                             Protocol.BITTORRENT))
        assert not cache.admits(FileSnapshot("cold",
                                             Protocol.BITTORRENT))
        assert cache.hits == 2 and cache.misses == 2

    def test_threshold_mode_without_catalog(self):
        cache = CooperativeApCache()
        popular = FileSnapshot("p", Protocol.BITTORRENT,
                               popularity=500)
        cold = FileSnapshot("c", Protocol.BITTORRENT, popularity=1)
        assert cache.admits(popular)
        assert not cache.admits(cold)

    def test_backend_needs_an_ap_and_a_hit(self):
        cache = CooperativeApCache.from_catalog(self.catalog_rows())
        backend = CoopApCacheBackend(cache=cache)
        hit = FileSnapshot("small-popular", Protocol.BITTORRENT,
                           size=1e9)
        assert backend.available(make_context(ap=hiwifi()), hit)
        assert not backend.available(make_context(ap=None), hit)
        decision = backend.route(make_context(ap=hiwifi()), hit)
        assert decision.action is Action.NEIGHBOR_AP
        assert decision.data_source is DataSource.NEIGHBOR_AP

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            CooperativeApCache(capacity_bytes=0.0)


class _Stub(Backend):
    """A backend with a fixed forecast, for policy-ranking tests."""

    def __init__(self, name, delay, cloud_bytes, ok=True):
        self.name = name
        self._estimate = BackendEstimate(delay_seconds=delay,
                                         cloud_bytes=cloud_bytes)
        self._ok = ok

    def available(self, context, snapshot):
        return self._ok

    def route(self, context, snapshot):
        return Decision(action=Action.CLOUD,
                        data_source=DataSource.CLOUD,
                        rationale=f"stub:{self.name}")

    def estimate(self, context, snapshot):
        return self._estimate


class TestDelayAwarePolicy:
    SNAPSHOT = FileSnapshot("f", Protocol.HTTP, size=1e9)

    def test_cheapest_within_deadline_wins(self):
        policy = DelayAwarePolicy(deadline_seconds=100.0)
        backends = (_Stub("a", 50.0, 1000.0), _Stub("b", 80.0, 0.0))
        decision = policy.decide(make_context(), self.SNAPSHOT,
                                 backends)
        assert decision.rationale == "stub:b"

    def test_deadline_misses_rank_behind_meets(self):
        policy = DelayAwarePolicy(deadline_seconds=100.0)
        backends = (_Stub("fast-miss", 150.0, 0.0),
                    _Stub("slow-meet", 99.0, 500.0))
        decision = policy.decide(make_context(), self.SNAPSHOT,
                                 backends)
        assert decision.rationale == "stub:slow-meet"

    def test_all_missing_prefers_faster_at_equal_cost(self):
        policy = DelayAwarePolicy(deadline_seconds=10.0)
        backends = (_Stub("slower", 200.0, 0.0),
                    _Stub("faster", 150.0, 0.0))
        decision = policy.decide(make_context(), self.SNAPSHOT,
                                 backends)
        assert decision.rationale == "stub:faster"

    def test_penalised_backends_are_last_resort(self):
        policy = DelayAwarePolicy(deadline_seconds=100.0)
        backends = (_Stub("costly", 50.0, 1000.0),
                    _Stub("flaky", 80.0, 0.0))
        decision = policy.decide(make_context(), self.SNAPSHOT,
                                 backends, penalised=frozenset({"flaky"}))
        assert decision.rationale == "stub:costly"

    def test_unavailable_backends_are_skipped(self):
        policy = DelayAwarePolicy(deadline_seconds=100.0)
        backends = (_Stub("down", 1.0, 0.0, ok=False),
                    _Stub("up", 99.0, 500.0))
        decision = policy.decide(make_context(), self.SNAPSHOT,
                                 backends)
        assert decision.rationale == "stub:up"

    def test_no_backend_falls_back_to_direct(self):
        policy = DelayAwarePolicy(deadline_seconds=100.0)
        decision = policy.decide(make_context(), self.SNAPSHOT,
                                 (_Stub("down", 1.0, 0.0, ok=False),))
        assert decision == _NO_AP_DIRECT

    def test_deadline_validated(self):
        with pytest.raises(ValueError):
            DelayAwarePolicy(deadline_seconds=0.0)

    def test_per_request_budget_overrides_static_deadline(self):
        policy = DelayAwarePolicy(deadline_seconds=100.0)
        backends = (_Stub("slow-cheap", 80.0, 0.0),
                    _Stub("fast-costly", 30.0, 1000.0))
        # Against the static budget the slow-but-free backend wins.
        relaxed = policy.decide(make_context(), self.SNAPSHOT,
                                backends)
        assert relaxed.rationale == "stub:slow-cheap"
        # A propagated X-Deadline-Ms budget of 50 s flips the ranking:
        # only the costly backend still meets the deadline.
        hurried = UserContext(user_id="u1", ip_address="1.2.3.4",
                              access_bandwidth=4e6,
                              deadline_seconds=50.0)
        assert policy.effective_deadline(hurried) == 50.0
        assert policy.effective_deadline(make_context()) == 100.0
        decision = policy.decide(hurried, self.SNAPSHOT, backends)
        assert decision.rationale == "stub:fast-costly"


class TestFaultGate:
    def injector(self):
        plan = FaultPlan(name="test", seed=1, specs=(
            FaultSpec(kind="power_loss", target="ap:1",
                      start=100.0, duration=50.0),))
        return FaultInjector(plan)

    def test_domain_window_penalises_matching_backend(self):
        gate = FaultGate(self.injector())
        ap = SmartApBackend()
        assert gate.penalised(ap, 120.0)
        assert not gate.penalised(ap, 10.0)
        assert not gate.penalised(ap, 150.0)   # window is half-open

    def test_other_domains_unaffected(self):
        gate = FaultGate(self.injector())
        assert not gate.penalised(CloudBackend(), 120.0)
        assert not gate.penalised(D2dBackend(), 120.0)

    def test_gated_strategy_reorders_during_window(self):
        strategy = resolve_strategy("delay-aware",
                                    database=ContentDatabase(),
                                    faults=self.injector())
        strategy.now = 120.0
        backends, penalised = strategy._routing()
        assert penalised == {"coop-ap", "smart-ap"}
        # Penalised backends drop to the back of the preference order.
        assert [backend.name for backend in backends] == \
            ["d2d", "cloud", "coop-ap", "smart-ap"]
        strategy.now = 10.0
        backends, penalised = strategy._routing()
        assert penalised == frozenset()
        assert [backend.name for backend in backends] == \
            ["coop-ap", "d2d", "smart-ap", "cloud"]


class TestWebAppPolicySelection:
    def test_policy_param_switches_the_strategy(self):
        from repro.core.webapp import OdrWebApp
        app = OdrWebApp()
        query = ("/decide?link=magnet://origin/xyz&popularity=200"
                 "&bandwidth_mbps=20&ap=hiwifi")
        status, _type, body, _c, _h = app.handle(query)
        assert status == 200
        assert json.loads(body)["policy"] == "odr"
        status, _type, body, _c, _h = app.handle(
            query + "&policy=cloud-only")
        assert status == 200
        payload = json.loads(body)
        assert payload["policy"] == "cloud-only"
        assert payload["action"] in ("cloud", "cloud_predownload")

    def test_unknown_policy_is_a_400(self):
        from repro.core.webapp import OdrWebApp
        app = OdrWebApp()
        status, _type, body, _c, _h = app.handle(
            "/decide?link=http://host/f&policy=warp")
        assert status == 400
        assert "warp" in json.loads(body)["error"]

    def test_service_accepts_a_policy_name(self):
        from repro.core.service import OdrService
        service = OdrService(ContentDatabase(), policy="delay-aware")
        response = service.handle_request(
            make_context(ap=hiwifi()), "magnet://origin/abc")
        assert response.decision.action in tuple(Action)


class TestComparisonDeterminism:
    LIMIT = 60

    def scorecard(self, **overrides):
        from repro.backends.replay import compare
        settings = dict(scale=0.01, seed=20150222, limit=self.LIMIT,
                        shards=2, jobs=1)
        settings.update(overrides)
        return compare(**settings)

    def test_digest_invariant_across_shards(self):
        digests = {self.scorecard(shards=shards)["digest"]
                   for shards in (1, 2, 5)}
        assert len(digests) == 1

    def test_digest_invariant_across_jobs(self):
        assert self.scorecard(jobs=2)["digest"] == \
            self.scorecard(jobs=1)["digest"]

    def test_rerun_is_identical(self):
        first = self.scorecard()
        second = self.scorecard()
        assert first == second

    def test_scorecard_covers_the_new_backends(self):
        scorecard = self.scorecard()
        names = [combo["name"] for combo in scorecard["combos"]]
        assert "cloud/cloud-only" in names
        assert "cloud+ap/odr" in names
        assert "all/delay-aware" in names
        shares = {name: combo["backend_share"]
                  for name, combo in zip(names, scorecard["combos"])}
        assert shares["cloud/cloud-only"].get("cloud") == 1.0
        assert set(shares["all/delay-aware"]) & {"d2d", "coop-ap"}

    def test_seed_changes_the_digest(self):
        assert self.scorecard()["digest"] != \
            self.scorecard(seed=7)["digest"]

    def test_cli_unknown_combo_exits_2(self, capsys):
        from repro.backends.__main__ import main
        assert main(["--combo", "no-such-combo"]) == 2
        assert "known:" in capsys.readouterr().err

    def test_cli_quiet_prints_the_digest(self, capsys):
        from repro.backends.__main__ import main
        assert main(["--limit", str(self.LIMIT), "--shards", "2",
                     "--combo", "cloud-only", "--quiet"]) == 0
        digest = capsys.readouterr().out.strip()
        assert len(digest) == 64
        assert int(digest, 16) is not None
