"""Tests for the observability subsystem (repro.obs)."""

import json
import math
import random

import pytest

from repro.obs import (
    DEFAULT_BIN_WIDTH,
    NOOP,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    MetricsRegistry,
    NoopRegistry,
    QuantileSketch,
    export,
    load_jsonl,
    render_prometheus,
    render_summary_table,
    span,
    summary_table,
    write_jsonl,
)
from repro.sim import Simulator, Timeout
from repro.sim.engine import SimulationError


class TestQuantileSketch:
    def test_tracks_exact_count_sum_min_max(self):
        sketch = QuantileSketch()
        sketch.extend([3.0, 1.0, 4.0, 1.0, 5.0])
        assert sketch.count == 5
        assert sketch.total == pytest.approx(14.0)
        assert sketch.min_value == 1.0
        assert sketch.max_value == 5.0
        assert sketch.mean == pytest.approx(2.8)

    def test_quantiles_within_relative_error(self):
        rng = random.Random(7)
        values = sorted(rng.lognormvariate(8, 2) for _ in range(5000))
        sketch = QuantileSketch()
        sketch.extend(values)
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = values[min(len(values) - 1,
                               math.ceil(q * len(values)) - 1)]
            estimate = sketch.quantile(q)
            # Geometric buckets with growth 1.05 bound the relative
            # error at ~2.5%; allow slack for rank discretisation.
            assert abs(estimate - exact) / exact < 0.05

    def test_extreme_quantiles_are_exact(self):
        sketch = QuantileSketch()
        sketch.extend([10.0, 20.0, 30.0])
        assert sketch.quantile(0.0) == 10.0
        assert sketch.quantile(1.0) == 30.0

    def test_nonpositive_values_fold_into_zero_bucket(self):
        sketch = QuantileSketch()
        sketch.extend([0.0, -1.0, 0.0, 100.0])
        assert sketch.count == 4
        assert sketch.quantile(0.5) <= 0.0
        assert sketch.quantile(1.0) == 100.0

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert len(sketch) == 0
        assert sketch.mean == 0.0
        assert sketch.quantile(0.5) == 0.0

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)

    def test_merge_combines_streams(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.extend([1.0, 2.0])
        b.extend([3.0, 4.0])
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(10.0)
        assert a.min_value == 1.0 and a.max_value == 4.0

    def test_iter_yields_ascending_representatives(self):
        sketch = QuantileSketch()
        sketch.extend([0.0, 1.0, 100.0])
        points = list(sketch)
        assert [count for _value, count in points] == [1, 1, 1]
        assert points == sorted(points)


class TestRegistry:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        counter = metrics.counter("repro_test_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        assert metrics.snapshot()["repro_test_total"] == 5.0

    def test_counter_rejects_negative(self):
        metrics = MetricsRegistry()
        with pytest.raises(ValueError):
            metrics.counter("repro_test_total").inc(-1)

    def test_gauge_tracks_peak(self):
        metrics = MetricsRegistry()
        gauge = metrics.gauge("repro_test_depth")
        gauge.set(3)
        gauge.set(9)
        gauge.set(2)
        assert gauge.value == 2.0
        assert gauge.peak == 9.0

    def test_same_name_same_labels_is_same_instrument(self):
        metrics = MetricsRegistry()
        assert metrics.counter("repro_x_total", isp="unicom") is \
            metrics.counter("repro_x_total", isp="unicom")
        assert metrics.counter("repro_x_total", isp="unicom") is not \
            metrics.counter("repro_x_total", isp="telecom")

    def test_kind_mismatch_raises(self):
        metrics = MetricsRegistry()
        metrics.counter("repro_test_total")
        with pytest.raises(ValueError, match="already registered"):
            metrics.gauge("repro_test_total")

    def test_series_binned_by_sim_time(self):
        fake_now = [0.0]
        metrics = MetricsRegistry(bin_width=100.0,
                                  clock=lambda: fake_now[0])
        counter = metrics.counter("repro_test_total")
        counter.inc(1)
        fake_now[0] = 50.0
        counter.inc(2)
        fake_now[0] = 150.0
        counter.inc(5)
        assert metrics.series("repro_test_total") == \
            [(0.0, 3.0), (100.0, 5.0)]

    def test_gauge_series_keeps_last_value_per_bin(self):
        fake_now = [0.0]
        metrics = MetricsRegistry(bin_width=100.0,
                                  clock=lambda: fake_now[0])
        gauge = metrics.gauge("repro_test_depth")
        gauge.set(7)
        gauge.set(3)
        assert metrics.series("repro_test_depth") == [(0.0, 3.0)]

    def test_histogram_series_counts_observations(self):
        metrics = MetricsRegistry(bin_width=100.0, clock=lambda: 10.0)
        histogram = metrics.histogram("repro_test_seconds")
        histogram.observe(1.0)
        histogram.observe(9.0)
        assert metrics.series("repro_test_seconds") == [(0.0, 2.0)]
        assert histogram.quantile(1.0) == 9.0

    def test_rejects_nonpositive_bin_width(self):
        with pytest.raises(ValueError):
            MetricsRegistry(bin_width=0.0)

    def test_default_bin_width_matches_fig11(self):
        assert MetricsRegistry().bin_width == DEFAULT_BIN_WIDTH == 300.0

    def test_labelled_rendering(self):
        metrics = MetricsRegistry()
        counter = metrics.counter("repro_x_total", isp="unicom", n=3)
        assert counter.full_name == 'repro_x_total{isp="unicom",n="3"}'


class TestNoop:
    def test_noop_registry_is_disabled(self):
        assert NOOP.enabled is False
        assert isinstance(NOOP, NoopRegistry)

    def test_noop_instruments_are_shared_singletons(self):
        assert NOOP.counter("a") is NOOP.counter("b") is NOOP_COUNTER
        assert NOOP.gauge("a") is NOOP_GAUGE
        assert NOOP.histogram("a") is NOOP_HISTOGRAM

    def test_noop_instruments_swallow_everything(self):
        NOOP.counter("x").inc(5)
        NOOP.gauge("x").set(5)
        NOOP.histogram("x").observe(5)
        assert NOOP.snapshot() == {}
        assert NOOP.to_rows() == []
        assert NOOP.series("x") == []
        assert NOOP.metric_names() == set()

    def test_noop_span_records_nothing(self):
        with span(NOOP, "phase") as handle:
            handle.set_attr("k", "v")
        assert NOOP.spans == []


class TestSpans:
    def test_span_records_wall_and_sim_duration(self):
        fake_now = [100.0]
        metrics = MetricsRegistry(clock=lambda: fake_now[0])
        with span(metrics, "phase", scale=0.01):
            fake_now[0] = 400.0
        (recorded,) = metrics.spans
        assert recorded["name"] == "phase"
        assert recorded["sim_start"] == 100.0
        assert recorded["sim_end"] == 400.0
        assert recorded["wall_seconds"] >= 0.0
        assert recorded["attrs"] == {"scale": 0.01}
        assert "repro_trace_phase_wall_seconds" in metrics.metric_names()

    def test_span_records_error_and_reraises(self):
        metrics = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with span(metrics, "phase"):
                raise RuntimeError("boom")
        (recorded,) = metrics.spans
        assert "RuntimeError" in recorded["attrs"]["error"]


class TestExporters:
    @staticmethod
    def _populated():
        metrics = MetricsRegistry(clock=lambda: 42.0)
        metrics.counter("repro_test_total", isp="unicom").inc(3)
        metrics.gauge("repro_test_depth").set(7)
        histogram = metrics.histogram("repro_test_seconds")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        metrics.record_span("phase", 0.0, 10.0, 0.5, {"k": "v"})
        return metrics

    def test_jsonl_round_trips_through_table_loader(self, tmp_path):
        metrics = self._populated()
        path = tmp_path / "m.jsonl"
        count = write_jsonl(metrics, path)
        rows = load_jsonl(path)
        assert len(rows) == count
        # The loaded log and the live registry render identical tables.
        assert render_summary_table(rows) == summary_table(metrics)
        assert "repro_test_total" in render_summary_table(rows)
        assert "phase" in render_summary_table(rows)

    def test_load_jsonl_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "summary"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_jsonl(path)

    def test_prometheus_rendering(self):
        text = render_prometheus(self._populated())
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{isp="unicom"} 3' in text
        assert "repro_test_depth_peak 7" in text
        assert "repro_test_seconds_count 3" in text
        assert 'quantile="0.5"' in text

    def test_export_dispatch(self, tmp_path):
        metrics = self._populated()
        assert "metric rows" in export(metrics, "jsonl",
                                       tmp_path / "m.jsonl")
        prom_path = tmp_path / "m.prom"
        export(metrics, "prom", prom_path)
        assert prom_path.read_text().startswith("# TYPE")
        assert "repro_test_depth" in export(metrics, "table")

    def test_export_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unknown metrics format"):
            export(MetricsRegistry(), "xml")

    def test_jsonl_export_requires_path(self):
        with pytest.raises(ValueError, match="needs an output path"):
            export(MetricsRegistry(), "jsonl")


class TestSimulatorIntegration:
    @staticmethod
    def _ticker(interval, stop):
        elapsed = 0.0
        while elapsed < stop:
            yield Timeout(interval)
            elapsed += interval

    def test_engine_counts_events_with_sim_time_stamps(self):
        metrics = MetricsRegistry(bin_width=10.0)
        sim = Simulator(metrics=metrics)
        sim.process(self._ticker(1.0, 25.0))
        sim.run()
        names = metrics.metric_names()
        assert "repro_sim_events_fired_total" in names
        assert "repro_sim_events_scheduled_total" in names
        assert "repro_sim_process_resumes_total" in names
        assert metrics.counter("repro_sim_events_fired_total").value \
            >= 25
        # Events span several sim-time bins.
        series = metrics.series("repro_sim_events_fired_total")
        assert len(series) >= 2
        assert metrics.gauge("repro_sim_heap_depth").peak >= 1.0

    def test_uninstrumented_simulator_has_no_obs_hooks(self):
        sim = Simulator()
        assert sim._obs is None
        sim.process(self._ticker(1.0, 3.0))
        sim.run()

    def test_error_messages_carry_sim_time_and_event_name(self):
        sim = Simulator()
        event = sim.event(name="probe")
        event.trigger()
        with pytest.raises(SimulationError) as excinfo:
            event.trigger()
        message = str(excinfo.value)
        assert "probe" in message
        assert "t=0" in message


class TestCliIntegration:
    def test_cloud_metrics_out_writes_parseable_jsonl(self, tmp_path,
                                                      capsys):
        from repro.cli import main
        path = tmp_path / "metrics.jsonl"
        assert main(["cloud", "--scale", "0.001",
                     "--metrics-out", str(path)]) == 0
        assert "metric rows" in capsys.readouterr().out
        rows = load_jsonl(path)
        names = {row["metric"] for row in rows if "metric" in row}
        # The acceptance bar: >= 8 distinct metrics spanning the cloud,
        # sim, and transfer subsystems.
        assert len(names) >= 8
        for subsystem in ("cloud", "sim", "transfer"):
            assert any(name.startswith(f"repro_{subsystem}_")
                       for name in names), subsystem
        # The two headline series called out in the issue.
        hit_series = [row for row in rows
                      if row["type"] == "series"
                      and row["metric"] == "repro_cloud_cache_hits_total"]
        upload_series = [row for row in rows
                         if row["type"] == "series"
                         and row["metric"] == "repro_cloud_upload_gbps"]
        assert hit_series and upload_series
        assert all(row["sim_time"] >= 0.0 for row in upload_series)
        # Round-trip: the dumped log renders through the table exporter.
        table = render_summary_table(rows)
        assert "repro_cloud_cache_hits_total" in table
