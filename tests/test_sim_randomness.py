"""Tests for deterministic random-stream management."""

import numpy as np

from repro.sim.randomness import RngFactory, derive_seed, substream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_label_changes_seed(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_master_changes_seed(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456789, "stream") < 2 ** 64


class TestSubstream:
    def test_same_inputs_same_draws(self):
        a = substream(7, "x").random(5)
        b = substream(7, "x").random(5)
        assert np.allclose(a, b)

    def test_different_labels_different_draws(self):
        a = substream(7, "x").random(5)
        b = substream(7, "y").random(5)
        assert not np.allclose(a, b)


class TestRngFactory:
    def test_stream_is_memoised(self):
        factory = RngFactory(3)
        assert factory.stream("a") is factory.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        first = RngFactory(3)
        _ = first.stream("noise").random(100)
        a1 = first.stream("target").random(5)

        second = RngFactory(3)
        a2 = second.stream("target").random(5)
        assert np.allclose(a1, a2)

    def test_fork_produces_independent_child(self):
        parent = RngFactory(3)
        child = parent.fork("child")
        assert child.master_seed != parent.master_seed
        assert not np.allclose(parent.stream("s").random(4),
                               child.stream("s").random(4))

    def test_fork_is_deterministic(self):
        a = RngFactory(3).fork("c").stream("s").random(4)
        b = RngFactory(3).fork("c").stream("s").random(4)
        assert np.allclose(a, b)
