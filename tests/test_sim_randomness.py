"""Tests for deterministic random-stream management."""

import numpy as np

from repro.sim.randomness import RngFactory, derive_seed, substream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_label_changes_seed(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_master_changes_seed(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456789, "stream") < 2 ** 64


class TestSubstream:
    def test_same_inputs_same_draws(self):
        a = substream(7, "x").random(5)
        b = substream(7, "x").random(5)
        assert np.allclose(a, b)

    def test_different_labels_different_draws(self):
        a = substream(7, "x").random(5)
        b = substream(7, "y").random(5)
        assert not np.allclose(a, b)


class TestRngFactory:
    def test_stream_is_memoised(self):
        factory = RngFactory(3)
        assert factory.stream("a") is factory.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        first = RngFactory(3)
        _ = first.stream("noise").random(100)
        a1 = first.stream("target").random(5)

        second = RngFactory(3)
        a2 = second.stream("target").random(5)
        assert np.allclose(a1, a2)

    def test_fork_produces_independent_child(self):
        parent = RngFactory(3)
        child = parent.fork("child")
        assert child.master_seed != parent.master_seed
        assert not np.allclose(parent.stream("s").random(4),
                               child.stream("s").random(4))

    def test_fork_is_deterministic(self):
        a = RngFactory(3).fork("c").stream("s").random(4)
        b = RngFactory(3).fork("c").stream("s").random(4)
        assert np.allclose(a, b)


class TestShardDeterminism:
    """Regression guards for the properties ``repro.scale`` builds on:
    forked children must be insensitive to the parent's draw history,
    and a factory shipped to another process (the spawn pool pickles
    its payloads) must produce the same streams there as here."""

    def test_fork_ignores_parent_draw_order(self):
        quiet = RngFactory(11)
        noisy = RngFactory(11)
        _ = noisy.stream("warmup").random(1000)
        _ = noisy.fork("other-child").stream("s").random(10)
        a = quiet.fork("child").stream("s").random(8)
        b = noisy.fork("child").stream("s").random(8)
        assert np.allclose(a, b)

    def test_nested_forks_are_path_addressed(self):
        a = RngFactory(5).fork("cloud").fork("file:3")
        b = RngFactory(5).fork("cloud").fork("file:3")
        c = RngFactory(5).fork("cloud").fork("file:4")
        assert np.allclose(a.stream("fetch").random(4),
                           b.stream("fetch").random(4))
        assert not np.allclose(a.stream("fetch").random(4),
                               c.stream("fetch").random(4))

    def test_pickled_factory_reproduces_streams_in_a_subprocess(
            self, tmp_path):
        import json
        import os
        import pickle
        import subprocess
        import sys

        factory = RngFactory(20150222).fork("scale-cloud")
        expected = factory.fork("file:42").stream("session").random(6)

        payload = tmp_path / "factory.pkl"
        payload.write_bytes(pickle.dumps(factory))
        script = (
            "import json, pickle, sys\n"
            "factory = pickle.loads(open(sys.argv[1], 'rb').read())\n"
            "draws = factory.fork('file:42').stream('session')"
            ".random(6)\n"
            "print(json.dumps(list(draws)))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script, str(payload)],
            capture_output=True, text=True, env=os.environ.copy(),
            check=True)
        assert np.allclose(json.loads(completed.stdout), expected)
