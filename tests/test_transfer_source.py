"""Tests for content sources and the source factory."""

import numpy as np
import pytest

from repro.transfer.protocols import Protocol
from repro.transfer.source import (
    AttemptDraw,
    CAUSE_INSUFFICIENT_SEEDS,
    CAUSE_POOR_SERVER,
    CLOUD_VANTAGE,
    HOME_VANTAGE,
    HttpFtpSource,
    P2PSwarmSource,
    SourceModel,
)
from repro.transfer.swarm import Swarm


class TestAttemptDraw:
    def test_available_requires_positive_rate(self):
        with pytest.raises(ValueError):
            AttemptDraw(available=True, rate=0.0)

    def test_unavailable_requires_cause(self):
        with pytest.raises(ValueError):
            AttemptDraw(available=False, rate=0.0)

    def test_mid_failure_probability_bounds(self):
        with pytest.raises(ValueError):
            AttemptDraw(available=True, rate=1.0,
                        mid_failure_probability=1.5)


class TestP2PSwarmSource:
    def test_requires_p2p_protocol(self):
        with pytest.raises(ValueError):
            P2PSwarmSource(Swarm("f", 5.0), protocol=Protocol.HTTP)

    def test_dead_swarm_reports_insufficient_seeds(self):
        source = P2PSwarmSource(Swarm("f", 0.0))
        rng = np.random.default_rng(0)
        draw = source.draw_attempt(rng, HOME_VANTAGE)
        assert not draw.available
        assert draw.failure_cause == CAUSE_INSUFFICIENT_SEEDS

    def test_cloud_vantage_sees_more_availability(self):
        source = P2PSwarmSource(Swarm("f", 3.0))
        rng = np.random.default_rng(1)
        trials = 3000
        cloud_ok = sum(source.draw_attempt(rng, CLOUD_VANTAGE).available
                       for _ in range(trials))
        home_ok = sum(source.draw_attempt(rng, HOME_VANTAGE).available
                      for _ in range(trials))
        assert cloud_ok > home_ok * 1.1

    def test_available_draws_carry_churn_risk(self):
        source = P2PSwarmSource(Swarm("f", 2.0))
        rng = np.random.default_rng(2)
        churns = [draw.mid_failure_probability
                  for draw in (source.draw_attempt(rng, HOME_VANTAGE)
                               for _ in range(500))
                  if draw.available]
        assert churns and all(0.0 <= c <= 0.30 for c in churns)

    def test_thriving_swarm_has_negligible_churn(self):
        source = P2PSwarmSource(Swarm("hot", 1000.0))
        rng = np.random.default_rng(3)
        draw = source.draw_attempt(rng, CLOUD_VANTAGE)
        assert draw.available
        assert draw.mid_failure_probability < 0.01


class TestHttpFtpSource:
    def test_requires_client_server_protocol(self):
        with pytest.raises(ValueError):
            HttpFtpSource(protocol=Protocol.BITTORRENT)

    def test_drop_probability_validation(self):
        with pytest.raises(ValueError):
            HttpFtpSource(drop_probability=1.5)

    def test_drops_report_poor_server(self):
        source = HttpFtpSource(drop_probability=1.0)
        rng = np.random.default_rng(4)
        draw = source.draw_attempt(rng, HOME_VANTAGE)
        assert not draw.available
        assert draw.failure_cause == CAUSE_POOR_SERVER

    def test_cloud_resume_bonus_reduces_drops(self):
        source = HttpFtpSource(drop_probability=0.4)
        rng = np.random.default_rng(5)
        trials = 3000
        cloud_drops = sum(
            not source.draw_attempt(rng, CLOUD_VANTAGE).available
            for _ in range(trials))
        home_drops = sum(
            not source.draw_attempt(rng, HOME_VANTAGE).available
            for _ in range(trials))
        assert cloud_drops < home_drops * 0.75

    def test_rate_respects_cap(self):
        source = HttpFtpSource(drop_probability=0.0, rate_cap=1e5)
        rng = np.random.default_rng(6)
        for _ in range(200):
            draw = source.draw_attempt(rng, HOME_VANTAGE)
            assert draw.rate <= 1e5


class TestSourceModel:
    def test_builds_by_protocol(self):
        model = SourceModel()
        p2p = model.build("f1", Protocol.BITTORRENT, 10.0)
        server = model.build("f2", Protocol.FTP, 10.0)
        assert isinstance(p2p, P2PSwarmSource)
        assert isinstance(server, HttpFtpSource)
        assert server.protocol is Protocol.FTP

    def test_server_drop_decays_with_popularity(self):
        model = SourceModel()
        cold = model.server_drop_probability(1.0)
        hot = model.server_drop_probability(500.0)
        assert cold > hot
        assert hot >= model.http_drop_floor

    def test_swarm_demand_passes_through(self):
        model = SourceModel()
        source = model.build("f", Protocol.EMULE, 42.0)
        assert isinstance(source, P2PSwarmSource)
        assert source.swarm.weekly_demand == 42.0
