"""Tests for the cloud's ablation switches (cache / privileged paths)."""

import pytest

from repro.cloud import CloudConfig, XuanfengCloud
from repro.netsim.isp import ISP, MAJOR_ISPS
from repro.sim.clock import kbps
from repro.workload import WorkloadConfig, WorkloadGenerator

SMALL = WorkloadConfig(scale=0.002, seed=11)


@pytest.fixture(scope="module")
def small_workload():
    return WorkloadGenerator(SMALL).generate()


class TestCacheSwitch:
    def test_cache_off_means_no_hits_and_more_failures(self,
                                                       small_workload):
        on = XuanfengCloud(CloudConfig(scale=SMALL.scale)) \
            .run(small_workload)
        off = XuanfengCloud(CloudConfig(scale=SMALL.scale,
                                        collaborative_cache=False)) \
            .run(small_workload)
        assert off.cache_hit_ratio == 0.0
        assert off.request_failure_ratio > on.request_failure_ratio
        # Every request pays a pre-download attempt without the cache.
        assert off.fleet.attempts >= len(small_workload.requests)
        assert on.fleet.attempts < 0.5 * off.fleet.attempts


class TestPrivilegedPathSwitch:
    def test_isp_blind_selection_ignores_the_home_group(self):
        config = CloudConfig(scale=0.01, privileged_paths=False)
        from repro.cloud.upload import UploadingServers
        uploads = UploadingServers(config)
        candidates = uploads.candidate_groups(ISP.CERNET)
        assert len(candidates) == 2
        # Headroom order, not home-first: CERNET's tiny pool is never
        # the most-headroom group at rest.
        assert candidates[0] is not ISP.CERNET

    def test_isp_blind_cloud_degrades_fetches(self, small_workload):
        aware = XuanfengCloud(CloudConfig(scale=SMALL.scale)) \
            .run(small_workload)
        blind = XuanfengCloud(CloudConfig(scale=SMALL.scale,
                                          privileged_paths=False)) \
            .run(small_workload)
        assert blind.impeded_fetch_share > aware.impeded_fetch_share
        assert blind.fetch_speed_cdf().median < \
            aware.fetch_speed_cdf().median
