"""Tests for the FIFO slot resource."""

import pytest

from repro.sim import Simulator, Timeout
from repro.sim.engine import SimulationError
from repro.sim.queueing import SlotResource


def worker(sim, resource, work, log, tag):
    slot = yield resource.acquire(sim)
    log.append(("start", tag, sim.now))
    yield Timeout(work)
    resource.release(slot, sim)
    log.append(("done", tag, sim.now))


class TestSlotResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlotResource(0)

    def test_uncontended_acquire_is_immediate(self):
        sim = Simulator()
        resource = SlotResource(2)
        log = []
        sim.process(worker(sim, resource, 5.0, log, "a"))
        sim.run()
        assert log == [("start", "a", 0.0), ("done", "a", 5.0)]
        assert resource.available == 2

    def test_contention_serialises_in_fifo_order(self):
        sim = Simulator()
        resource = SlotResource(1)
        log = []
        for tag, work in (("a", 4.0), ("b", 2.0), ("c", 1.0)):
            sim.process(worker(sim, resource, work, log, tag))
        sim.run()
        starts = [(tag, when) for kind, tag, when in log
                  if kind == "start"]
        assert starts == [("a", 0.0), ("b", 4.0), ("c", 6.0)]

    def test_two_slots_run_two_at_once(self):
        sim = Simulator()
        resource = SlotResource(2)
        log = []
        for tag in "abc":
            sim.process(worker(sim, resource, 10.0, log, tag))
        sim.run()
        starts = dict((tag, when) for kind, tag, when in log
                      if kind == "start")
        assert starts["a"] == 0.0 and starts["b"] == 0.0
        assert starts["c"] == 10.0

    def test_statistics(self):
        sim = Simulator()
        resource = SlotResource(1)
        log = []
        for tag in "abc":
            sim.process(worker(sim, resource, 3.0, log, tag))
        sim.run()
        assert resource.total_acquired == 3
        assert resource.peak_queue_length == 2
        # Waits: 0 + 3 + 6 over three acquisitions.
        assert resource.mean_wait_time == pytest.approx(3.0)

    def test_double_release_is_an_error(self):
        sim = Simulator()
        resource = SlotResource(1)
        event = resource.acquire(sim)
        sim.run()
        slot = event.value
        resource.release(slot, sim)
        with pytest.raises(SimulationError):
            resource.release(slot, sim)

    def test_foreign_slot_rejected(self):
        sim = Simulator()
        first, second = SlotResource(1), SlotResource(1)
        event = first.acquire(sim)
        sim.run()
        with pytest.raises(SimulationError):
            second.release(event.value, sim)

    def test_queue_length_tracks_waiters(self):
        sim = Simulator()
        resource = SlotResource(1)
        resource.acquire(sim)
        resource.acquire(sim)
        resource.acquire(sim)
        assert resource.queue_length == 2
        assert resource.available == 0
