"""Tests for the analysis toolkit: CDFs, fitting, stats, tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CDF,
    TextTable,
    average_relative_error,
    bin_rate_series,
    empirical_cdf,
    fit_se,
    fit_zipf,
    peak_of_series,
    summarize,
)
from repro.analysis.stats import share_below


class TestCDF:
    def test_basic_quantities(self):
        cdf = empirical_cdf([3, 1, 2, 4])
        assert cdf.min == 1 and cdf.max == 4
        assert cdf.median == 2.5
        assert cdf.mean == 2.5
        assert len(cdf) == 4

    def test_probability_below_and_at_most(self):
        cdf = empirical_cdf([1, 2, 2, 3])
        assert cdf.probability_below(2) == 0.25
        assert cdf.probability_at_most(2) == 0.75
        assert cdf.probability_below(0) == 0.0
        assert cdf.probability_at_most(10) == 1.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_quantile_validation(self):
        cdf = empirical_cdf([1, 2])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_points_are_monotone(self):
        cdf = empirical_cdf(np.random.default_rng(0).random(100))
        points = cdf.points(20)
        assert len(points) == 20
        values = [value for value, _q in points]
        assert values == sorted(values)

    def test_points_need_two(self):
        with pytest.raises(ValueError):
            empirical_cdf([1.0]).points(1)

    def test_describe_formats_like_the_paper(self):
        text = empirical_cdf([1000.0, 2000.0]).describe(scale=1000.0,
                                                        unit=" KBps")
        assert "Min: 1 KBps" in text and "Max: 2 KBps" in text

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=200),
           st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_probability_below_is_a_monotone_cdf(self, sample, point):
        cdf = empirical_cdf(sample)
        p = cdf.probability_below(point)
        assert 0.0 <= p <= cdf.probability_at_most(point) <= 1.0
        assert cdf.min <= cdf.median <= cdf.max


class TestFitting:
    def test_zipf_fit_recovers_exact_power_law(self):
        ranks = np.arange(1, 500)
        popularity = np.exp(14.0) * ranks ** -1.05
        fit = fit_zipf(ranks, popularity)
        assert fit.a == pytest.approx(1.05, abs=1e-6)
        assert fit.b == pytest.approx(14.0, abs=1e-6)
        assert fit.average_relative_error < 1e-9

    def test_se_fit_recovers_exact_se_curve(self):
        ranks = np.arange(1, 500)
        popularity = (1.1 - 0.01 * np.log(ranks)) ** 100
        fit = fit_se(ranks, popularity, c=0.01)
        assert fit.a == pytest.approx(0.01, abs=1e-6)
        assert fit.b == pytest.approx(1.1, abs=1e-6)
        assert fit.average_relative_error < 1e-9

    def test_se_scans_c_grid(self):
        ranks = np.arange(1, 300)
        popularity = (1.2 - 0.02 * np.log(ranks)) ** (1 / 0.02)
        fit = fit_se(ranks, popularity)
        assert fit.c == pytest.approx(0.02)

    def test_se_beats_zipf_on_flattened_heads(self):
        # A bounded head (fetch-at-most-once) breaks the pure power law.
        ranks = np.arange(1, 2000)
        popularity = (1.13 - 0.01 * np.log(ranks)) ** 100
        zipf = fit_zipf(ranks, popularity)
        se = fit_se(ranks, popularity)
        assert se.average_relative_error < zipf.average_relative_error

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_zipf(np.array([1, 2]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            fit_zipf(np.array([0, 1, 2]), np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError):
            average_relative_error(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            fit_se(np.arange(1, 10), np.ones(9), c=-0.1)

    def test_relative_error_definition(self):
        error = average_relative_error(np.array([100.0, 200.0]),
                                       np.array([110.0, 180.0]))
        assert error == pytest.approx((0.1 + 0.1) / 2)


class TestStats:
    def test_summarize(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.count == 5
        assert stats.minimum == 1 and stats.maximum == 5
        assert stats.median == 3 and stats.mean == 3
        assert stats.p25 == 2 and stats.p75 == 4
        assert stats.as_dict()["p90"] == pytest.approx(4.6)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_share_below(self):
        assert share_below([1, 2, 3, 4], 3) == 0.5
        with pytest.raises(ValueError):
            share_below([], 1)


class TestTimeseries:
    def test_bin_rate_series_integrates_exactly(self):
        flows = [(0.0, 10.0, 5.0), (5.0, 15.0, 3.0)]
        series = bin_rate_series(flows, bin_width=5.0, horizon=20.0)
        assert series == pytest.approx([5.0, 8.0, 3.0, 0.0])

    def test_flows_clipped_to_horizon(self):
        series = bin_rate_series([(-5.0, 25.0, 2.0)], bin_width=10.0,
                                 horizon=20.0)
        assert series == pytest.approx([2.0, 2.0])

    def test_degenerate_flows_ignored(self):
        series = bin_rate_series([(5.0, 5.0, 2.0), (3.0, 1.0, 2.0),
                                  (0.0, 10.0, 0.0)],
                                 bin_width=10.0, horizon=10.0)
        assert series == pytest.approx([0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            bin_rate_series([], 0.0, 10.0)
        with pytest.raises(ValueError):
            peak_of_series(np.array([]))

    def test_peak_of_series(self):
        index, value = peak_of_series(np.array([1.0, 9.0, 3.0]))
        assert (index, value) == (1, 9.0)


class TestTextTable:
    def test_render_alignment_and_formats(self):
        table = TextTable(["name", "value"], ["", ".2f"])
        table.add_row("alpha", 1.234)
        table.add_row("b", 10.0)
        rendered = table.render()
        lines = rendered.splitlines()
        assert len(lines) == 4
        assert "1.23" in rendered and "10.00" in rendered

    def test_cell_count_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TextTable([])
        with pytest.raises(ValueError):
            TextTable(["a"], ["", ""])
