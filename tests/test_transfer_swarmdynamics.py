"""Tests for the fluid swarm-dynamics model."""

import numpy as np
import pytest

from repro.sim.clock import DAY, HOUR, WEEK, kbps
from repro.transfer.swarm import SwarmModel
from repro.transfer.swarmdynamics import (
    SwarmDynamics,
    SwarmDynamicsConfig,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SwarmDynamicsConfig(seed_upload_rate=0.0)
        with pytest.raises(ValueError):
            SwarmDynamicsConfig(abandonment=1.0)
        with pytest.raises(ValueError):
            SwarmDynamics(SwarmDynamicsConfig(), leechers=-1.0)


class TestInstantaneous:
    def test_empty_swarm_moves_nothing(self):
        dynamics = SwarmDynamics()
        assert dynamics.aggregate_bandwidth() == 0.0
        assert dynamics.per_leecher_rate() == 0.0

    def test_seed_rich_swarm_is_demand_limited(self):
        dynamics = SwarmDynamics(leechers=2.0, seeds=100.0)
        config = dynamics.config
        assert dynamics.aggregate_bandwidth() == pytest.approx(
            2.0 * config.leecher_download_cap)
        assert dynamics.per_leecher_rate() == pytest.approx(
            config.leecher_download_cap)

    def test_seed_poor_swarm_is_supply_limited(self):
        dynamics = SwarmDynamics(leechers=50.0, seeds=1.0)
        config = dynamics.config
        supply = config.seed_upload_rate + 50.0 * \
            config.leecher_upload_rate
        assert dynamics.aggregate_bandwidth() == pytest.approx(supply)
        assert dynamics.per_leecher_rate() < \
            config.leecher_download_cap

    def test_bandwidth_multiplier_grows_with_swarm(self):
        small = SwarmDynamics(leechers=2.0, seeds=1.0)
        large = SwarmDynamics(leechers=80.0, seeds=30.0)
        rate = kbps(450.0)
        assert large.bandwidth_multiplier(rate) > \
            small.bandwidth_multiplier(rate) > 1.0
        with pytest.raises(ValueError):
            small.bandwidth_multiplier(0.0)


class TestDynamics:
    def test_steady_state_matches_littles_law(self):
        config = SwarmDynamicsConfig()
        dynamics = SwarmDynamics(config, leechers=1.0, seeds=1.0)
        weekly_demand = 200.0
        arrival_rate = weekly_demand / WEEK
        dynamics.run(arrival_rate, duration=8 * WEEK, dt=HOUR)
        predicted = dynamics.steady_state_seeds(weekly_demand)
        assert dynamics.state.seeds == pytest.approx(predicted,
                                                     rel=0.25)

    def test_static_model_coupling_is_consistent(self):
        # The shipped SwarmModel default (0.8 seeds per weekly request)
        # corresponds to the dynamic model's residence time.
        config = SwarmDynamicsConfig()
        implied = SwarmDynamics.equivalent_seeds_per_weekly_request(
            config)
        assert implied == pytest.approx(
            SwarmModel().seeds_per_weekly_request, rel=0.15)

    def test_death_spiral_when_arrivals_stop(self):
        dynamics = SwarmDynamics(leechers=0.0, seeds=10.0)
        dynamics.run(arrival_rate=0.0, duration=4 * WEEK, dt=HOUR)
        assert dynamics.state.seeds < 0.1
        assert dynamics.state.leechers == 0.0

    def test_flash_crowd_recovers_through_seed_conversion(self):
        dynamics = SwarmDynamics(leechers=0.0, seeds=2.0)
        # A burst: 500 arrivals over two hours.
        dynamics.run(arrival_rate=500.0 / (2 * HOUR),
                     duration=2 * HOUR, dt=300.0)
        crowded_rate = dynamics.per_leecher_rate()
        # Then the tail: arrivals stop, completions mint seeds.
        dynamics.run(arrival_rate=0.5 / HOUR, duration=2 * DAY,
                     dt=600.0)
        recovered_rate = dynamics.per_leecher_rate()
        assert crowded_rate < recovered_rate
        assert dynamics.state.seeds > 2.0

    def test_populations_stay_non_negative(self):
        dynamics = SwarmDynamics(leechers=5.0, seeds=5.0)
        for _ in range(200):
            dynamics.step(arrival_rate=0.0, dt=DAY)
            assert dynamics.state.leechers >= 0.0
            assert dynamics.state.seeds >= 0.0

    def test_history_is_appended(self):
        dynamics = SwarmDynamics()
        dynamics.run(arrival_rate=1.0 / HOUR, duration=HOUR, dt=600.0)
        assert len(dynamics.history) == 7   # initial + 6 steps
        times = [state.time for state in dynamics.history]
        assert times == sorted(times)

    def test_step_validation(self):
        dynamics = SwarmDynamics()
        with pytest.raises(ValueError):
            dynamics.step(arrival_rate=1.0, dt=0.0)
        with pytest.raises(ValueError):
            dynamics.step(arrival_rate=-1.0, dt=1.0)
