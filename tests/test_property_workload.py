"""Property-based tests over the workload generator at random configs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import WorkloadConfig, WorkloadGenerator


@st.composite
def configs(draw):
    scale = draw(st.floats(min_value=0.0004, max_value=0.003))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    return WorkloadConfig(scale=scale, seed=seed)


class TestGeneratorInvariants:
    @given(config=configs())
    @settings(max_examples=12, deadline=None)
    def test_structural_invariants_hold_for_any_config(self, config):
        workload = WorkloadGenerator(config).generate()

        # Dimensions follow the config.
        assert len(workload.catalog) == config.file_count
        assert len(workload.users) == config.user_count
        assert len(workload.requests) == workload.catalog.total_demand()

        # Referential integrity.
        users = workload.user_by_id()
        for request in workload.requests:
            assert request.user_id in users
            record = workload.catalog[request.file_id]
            assert request.file_size == record.size
            assert 0.0 <= request.request_time <= config.horizon

        # Temporal ordering and unique task identity.
        times = [request.request_time for request in workload.requests]
        assert times == sorted(times)
        assert len({request.task_id
                    for request in workload.requests}) == \
            len(workload.requests)

        # Every demand is positive and every size physical.
        for record in workload.catalog:
            assert record.weekly_demand >= 1
            assert 4.0 <= record.size <= 4e9

        # Class shares are proper probability vectors.
        for shares in (workload.catalog.class_file_shares(),
                       workload.catalog.class_request_shares()):
            assert sum(shares.values()) == pytest.approx(1.0)
            assert all(0.0 <= value <= 1.0
                       for value in shares.values())
