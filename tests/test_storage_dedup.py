"""Tests for the MD5 content-addressed dedup store."""

import pytest

from repro.storage.dedup import ContentStore, content_id


class TestContentId:
    def test_md5_hex_format(self):
        digest = content_id("hello")
        assert len(digest) == 32
        assert int(digest, 16) >= 0

    def test_same_content_same_id(self):
        assert content_id("payload") == content_id(b"payload")

    def test_different_content_different_id(self):
        assert content_id("a") != content_id("b")


class TestContentStore:
    def test_first_add_is_not_a_dedup(self):
        store = ContentStore()
        assert store.add("x", 100.0) is False
        assert store.physical_bytes == 100.0
        assert store.logical_bytes == 100.0

    def test_second_add_deduplicates(self):
        store = ContentStore()
        store.add("x", 100.0)
        assert store.add("x", 100.0) is True
        assert store.physical_bytes == 100.0
        assert store.logical_bytes == 200.0
        assert store.dedup_ratio == pytest.approx(2.0)
        assert store.references("x") == 2

    def test_size_mismatch_is_an_error(self):
        store = ContentStore()
        store.add("x", 100.0)
        with pytest.raises(ValueError):
            store.add("x", 200.0)

    def test_release_frees_at_zero_references(self):
        store = ContentStore()
        store.add("x", 100.0)
        store.add("x", 100.0)
        store.release("x")
        assert "x" in store
        store.release("x")
        assert "x" not in store
        assert store.physical_bytes == 0.0
        assert store.logical_bytes == pytest.approx(0.0)

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            ContentStore().release("ghost")

    def test_drop_removes_all_references(self):
        store = ContentStore()
        store.add("x", 100.0)
        store.add("x", 100.0)
        store.drop("x")
        assert "x" not in store
        assert store.logical_bytes == pytest.approx(0.0)
        assert store.physical_bytes == pytest.approx(0.0)

    def test_drop_unknown_raises(self):
        with pytest.raises(KeyError):
            ContentStore().drop("ghost")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ContentStore().add("x", -1.0)

    def test_empty_store_ratio_is_one(self):
        assert ContentStore().dedup_ratio == 1.0

    def test_chunk_dedup_savings_are_marginal(self):
        # The <1% chunk-overlap finding that justified file-level-only
        # dedup (paper section 2.1).
        store = ContentStore()
        store.add("x", 1000.0)
        savings = store.estimate_chunk_dedup_savings()
        assert savings < 0.01 * store.physical_bytes
        with pytest.raises(ValueError):
            store.estimate_chunk_dedup_savings(cross_file_overlap=1.5)

    def test_len_counts_unique_objects(self):
        store = ContentStore()
        store.add("x", 1.0)
        store.add("x", 1.0)
        store.add("y", 2.0)
        assert len(store) == 2
