"""Tests for time/rate units -- the paper mixes bits and bytes freely."""

import pytest

from repro.sim.clock import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    format_duration,
    gbps,
    kbps,
    mbps,
    to_gbps,
    to_kbps,
    to_mbps,
)


class TestUnits:
    def test_time_constants(self):
        assert MINUTE == 60.0
        assert HOUR == 3600.0
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY

    def test_the_papers_bit_byte_equivalences(self):
        # "20 Mbps (= 2.5 MBps)" -- section 2.1.
        assert mbps(20.0) == pytest.approx(2.5e6)
        # "50 Mbps (= 6.25 MBps)" -- section 2.1.
        assert mbps(50.0) == pytest.approx(6.25e6)
        # "1 Mbps, or 125 KBps" -- section 1.
        assert mbps(1.0) == pytest.approx(kbps(125.0))
        # 30 Gbps of purchased upload bandwidth -- section 4.2.
        assert gbps(30.0) == pytest.approx(3.75e9)

    def test_roundtrips(self):
        assert to_mbps(mbps(17.0)) == pytest.approx(17.0)
        assert to_gbps(gbps(2.5)) == pytest.approx(2.5)
        assert to_kbps(kbps(287.0)) == pytest.approx(287.0)


class TestFormatDuration:
    def test_seconds_only(self):
        assert format_duration(42.0) == "42s"

    def test_compound(self):
        assert format_duration(2 * DAY + 3 * HOUR + 4 * MINUTE) == \
            "2d3h4m0s"

    def test_minutes(self):
        assert format_duration(82 * MINUTE) == "1h22m0s"

    def test_negative(self):
        assert format_duration(-90.0) == "-1m30s"

    def test_zero(self):
        assert format_duration(0.0) == "0s"
