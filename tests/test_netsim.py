"""Tests for the network substrate: ISPs, IPs, topology, access links."""

import ipaddress

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import (
    AccessBandwidthModel,
    AccessLink,
    AccessTechnology,
    ChinaTopology,
    ISP,
    IpAllocator,
    IpResolver,
    MAJOR_ISPS,
    default_registry,
)
from repro.netsim.isp import IspProfile, IspRegistry
from repro.netsim.link import ADSL_GOODPUT, TESTBED_ADSL, adsl_goodput
from repro.sim.clock import kbps, mbps


class TestIspRegistry:
    def test_population_shares_sum_to_one(self):
        shares = default_registry().population_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_four_majors(self):
        registry = default_registry()
        assert len(MAJOR_ISPS) == 4
        for isp in MAJOR_ISPS:
            assert registry.is_major(isp)
        assert not registry.is_major(ISP.OTHER)

    def test_other_share_matches_barrier_population(self):
        # ~9.6% of users sit outside the four majors (paper section 4.2).
        shares = default_registry().population_shares()
        assert shares[ISP.OTHER] == pytest.approx(0.096)

    def test_sampling_follows_shares(self):
        registry = default_registry()
        rng = np.random.default_rng(0)
        draws = [registry.sample_isp(rng) for _ in range(4000)]
        other_share = sum(1 for isp in draws if isp is ISP.OTHER) / 4000
        assert 0.07 < other_share < 0.125

    def test_rejects_bad_share_sum(self):
        with pytest.raises(ValueError):
            IspRegistry((IspProfile(ISP.UNICOM, ("1.0.0.0/8",), 0.5),))

    def test_rejects_duplicate_isp(self):
        with pytest.raises(ValueError):
            IspRegistry((
                IspProfile(ISP.UNICOM, ("1.0.0.0/8",), 0.5),
                IspProfile(ISP.UNICOM, ("2.0.0.0/8",), 0.5),
            ))


class TestIpAllocation:
    def test_allocations_are_unique(self):
        allocator = IpAllocator()
        addresses = {allocator.allocate(ISP.UNICOM) for _ in range(1000)}
        assert len(addresses) == 1000

    def test_allocation_lands_in_isp_blocks(self):
        allocator = IpAllocator()
        registry = default_registry()
        for isp in registry.isps():
            address = ipaddress.ip_address(allocator.allocate(isp))
            assert any(address in network
                       for network in registry.profile(isp).networks())

    def test_resolver_roundtrip(self):
        allocator = IpAllocator()
        resolver = IpResolver()
        for isp in default_registry().isps():
            for _ in range(50):
                assert resolver.resolve(allocator.allocate(isp)) is isp

    def test_unallocated_space_resolves_to_none(self):
        resolver = IpResolver()
        assert resolver.resolve("8.8.8.8") is None
        assert resolver.resolve("255.255.255.254") is None

    def test_is_major(self):
        allocator = IpAllocator()
        resolver = IpResolver()
        assert resolver.is_major(allocator.allocate(ISP.TELECOM))
        assert not resolver.is_major(allocator.allocate(ISP.OTHER))
        assert not resolver.is_major("8.8.8.8")

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_resolution_never_crashes(self, raw):
        resolver = IpResolver()
        result = resolver.resolve(str(ipaddress.ip_address(raw)))
        assert result is None or isinstance(result, ISP)


class TestTopology:
    def test_same_isp_zero_hops(self):
        topology = ChinaTopology()
        assert topology.hop_count(ISP.UNICOM, ISP.UNICOM) == 0

    def test_majors_peer_directly(self):
        topology = ChinaTopology()
        for a in MAJOR_ISPS:
            for b in MAJOR_ISPS:
                if a is not b:
                    assert topology.hop_count(a, b) == 1

    def test_other_reaches_all_majors_within_two_hops(self):
        topology = ChinaTopology()
        for isp in MAJOR_ISPS:
            assert 1 <= topology.hop_count(ISP.OTHER, isp) <= 2

    def test_intra_path_is_fast_and_low_latency(self):
        quality = ChinaTopology().path_quality(ISP.UNICOM, ISP.UNICOM)
        assert quality.cap_median > mbps(50.0)
        assert quality.hops == 0

    def test_cross_path_is_the_barrier(self):
        topology = ChinaTopology()
        intra = topology.path_quality(ISP.UNICOM, ISP.UNICOM)
        cross = topology.path_quality(ISP.UNICOM, ISP.TELECOM)
        assert cross.cap_median < kbps(200.0)
        assert cross.cap_median < intra.cap_median / 100
        assert cross.latency_ms > intra.latency_ms

    def test_latency_grows_with_hops(self):
        topology = ChinaTopology()
        one_hop = topology.path_quality(ISP.UNICOM, ISP.TELECOM)
        two_hop = topology.path_quality(ISP.OTHER, ISP.CERNET)
        assert two_hop.latency_ms > one_hop.latency_ms
        assert two_hop.cap_median < one_hop.cap_median

    def test_crosses_barrier(self):
        topology = ChinaTopology()
        assert not topology.crosses_barrier(ISP.MOBILE, ISP.MOBILE)
        assert topology.crosses_barrier(ISP.MOBILE, ISP.UNICOM)

    def test_sample_cap_positive_and_varies(self):
        quality = ChinaTopology().path_quality(ISP.UNICOM, ISP.TELECOM)
        rng = np.random.default_rng(1)
        caps = [quality.sample_cap(rng) for _ in range(100)]
        assert all(cap > 0 for cap in caps)
        assert len(set(caps)) > 90


class TestAccessLinks:
    def test_link_validation(self):
        with pytest.raises(ValueError):
            AccessLink(AccessTechnology.ADSL, downstream=0.0,
                       upstream=1.0)

    def test_low_bandwidth_threshold(self):
        slow = AccessLink(AccessTechnology.ADSL, downstream=kbps(100.0),
                          upstream=kbps(10.0))
        fast = AccessLink(AccessTechnology.ADSL, downstream=mbps(2.0),
                          upstream=kbps(100.0))
        assert slow.is_low_bandwidth
        assert not fast.is_low_bandwidth

    def test_testbed_line_is_20mbps(self):
        assert TESTBED_ADSL.downstream == mbps(20.0)
        assert adsl_goodput(TESTBED_ADSL) == \
            pytest.approx(mbps(20.0) * ADSL_GOODPUT)
        # The paper's observed ceiling: ~2.37 MBps.
        assert adsl_goodput(TESTBED_ADSL) == pytest.approx(2.375e6)

    def test_bandwidth_model_low_tail_share(self):
        model = AccessBandwidthModel()
        rng = np.random.default_rng(2)
        draws = np.array([model.sample_downstream(rng)
                          for _ in range(8000)])
        below = (draws < kbps(125.0)).mean()
        # The paper attributes 10.8% of fetches to slow lines.
        assert 0.08 < below < 0.14

    def test_bandwidth_model_respects_ceiling(self):
        model = AccessBandwidthModel(max_downstream=mbps(50.0))
        rng = np.random.default_rng(3)
        draws = [model.sample_downstream(rng) for _ in range(2000)]
        assert max(draws) <= mbps(50.0)

    def test_bandwidth_model_validation(self):
        with pytest.raises(ValueError):
            AccessBandwidthModel(low_tail_fraction=1.5)

    def test_sample_link_upstream_below_downstream(self):
        model = AccessBandwidthModel()
        rng = np.random.default_rng(4)
        for _ in range(100):
            link = model.sample_link(rng)
            assert link.upstream <= link.downstream or \
                link.downstream < mbps(0.5)
