"""Tests for the ODR service facade and the baseline strategies."""

import pytest

from repro.ap import MIWIFI, NEWIFI
from repro.cloud.database import ContentDatabase
from repro.core import (
    Action,
    AlwaysHybridStrategy,
    AmsStrategy,
    CloudOnlyStrategy,
    DataSource,
    OdrMiddleware,
    OdrService,
    OdrStrategy,
    SmartApInfo,
    SmartApOnlyStrategy,
    UserContext,
)
from repro.core.service import parse_link
from repro.netsim.ip import IpAllocator
from repro.netsim.isp import ISP
from repro.sim.clock import mbps
from repro.transfer.protocols import Protocol

ALLOCATOR = IpAllocator()
UNICOM_IP = ALLOCATOR.allocate(ISP.UNICOM)


def ctx(user="u1", bandwidth=mbps(8.0), ap=None) -> UserContext:
    return UserContext(user_id=user, ip_address=UNICOM_IP,
                       access_bandwidth=bandwidth, smart_ap=ap)


def make_db(popularity=0, cached=False,
            file_id="abc123") -> ContentDatabase:
    db = ContentDatabase()
    for when in range(popularity):
        db.record_request(file_id, 1e8, float(when))
    db.set_cached(file_id, cached)
    return db


class TestLinkParsing:
    def test_schemes_map_to_protocols(self):
        assert parse_link("http://host/abc") == (Protocol.HTTP, "abc")
        assert parse_link("https://host/p/abc") == (Protocol.HTTP, "abc")
        assert parse_link("ftp://host/abc") == (Protocol.FTP, "abc")
        assert parse_link("ed2k://host/abc") == (Protocol.EMULE, "abc")
        assert parse_link("bittorrent://origin/abc") == \
            (Protocol.BITTORRENT, "abc")

    def test_unsupported_scheme_rejected(self):
        with pytest.raises(ValueError):
            parse_link("gopher://host/abc")

    def test_trailing_slash_handled(self):
        assert parse_link("http://host/abc/")[1] == "abc"


class TestOdrService:
    def test_handle_request_returns_decision_and_explanation(self):
        service = OdrService(make_db(popularity=5, cached=True))
        response = service.handle_request(
            ctx(), "http://origin/abc123")
        assert response.decision.action is Action.CLOUD
        assert "cloud" in response.explanation
        assert response.file_id == "abc123"
        assert service.requests_served == 1

    def test_cookie_carries_aux_info_across_requests(self):
        service = OdrService(make_db(popularity=200, cached=True))
        ap = SmartApInfo.default_for(MIWIFI)
        service.handle_request(ctx(ap=ap), "bittorrent://origin/abc123")
        # Second visit leaves the AP field blank; the cookie fills it.
        response = service.handle_request(
            UserContext("u1", UNICOM_IP, None, None),
            "bittorrent://origin/abc123")
        assert response.decision.action is Action.SMART_AP

    def test_predownload_completion_flow(self):
        db = make_db(popularity=5, cached=False)
        service = OdrService(db)
        first = service.handle_request(ctx(),
                                       "bittorrent://origin/abc123")
        assert first.decision.action is Action.CLOUD_PREDOWNLOAD
        db.set_cached("abc123", True)
        done = service.handle_predownload_completion(ctx(), "abc123",
                                                     success=True)
        assert done.decision.action is Action.CLOUD
        failed = service.handle_predownload_completion(ctx(), "abc123",
                                                       success=False)
        assert failed.decision.action is Action.NOTIFY_FAILURE

    def test_explanation_names_bottlenecks(self):
        service = OdrService(make_db(popularity=200, cached=True))
        response = service.handle_request(
            ctx(ap=SmartApInfo.default_for(NEWIFI),
                bandwidth=mbps(20.0)),
            "bittorrent://origin/abc123")
        assert "Bottleneck 2" in response.explanation


class TestBaselineStrategies:
    def test_cloud_only_uses_cloud_always(self):
        strategy = CloudOnlyStrategy(make_db(cached=True))
        decision = strategy.decide(ctx(), "abc123", Protocol.BITTORRENT)
        assert decision.action is Action.CLOUD
        miss = CloudOnlyStrategy(make_db(cached=False)).decide(
            ctx(), "abc123", Protocol.BITTORRENT)
        assert miss.action is Action.CLOUD_PREDOWNLOAD

    def test_smart_ap_only_uses_the_ap(self):
        strategy = SmartApOnlyStrategy()
        with_ap = strategy.decide(
            ctx(ap=SmartApInfo.default_for(NEWIFI)), "abc123",
            Protocol.BITTORRENT)
        assert with_ap.action is Action.SMART_AP
        assert with_ap.data_source is DataSource.ORIGINAL
        without = strategy.decide(ctx(), "abc123", Protocol.BITTORRENT)
        assert without.action is Action.USER_DEVICE

    def test_always_hybrid_takes_the_longest_flow(self):
        db = make_db(cached=True)
        strategy = AlwaysHybridStrategy(db)
        decision = strategy.decide(
            ctx(ap=SmartApInfo.default_for(NEWIFI)), "abc123",
            Protocol.HTTP)
        assert decision.action is Action.CLOUD_THEN_SMART_AP
        uncached = AlwaysHybridStrategy(make_db(cached=False))
        assert uncached.decide(ctx(), "abc123", Protocol.HTTP).action \
            is Action.CLOUD_PREDOWNLOAD

    def test_ams_splits_on_popularity_only(self):
        db = make_db(popularity=200, cached=True)
        strategy = AmsStrategy(db)
        popular = strategy.decide(ctx(), "abc123", Protocol.BITTORRENT)
        assert popular.data_source is DataSource.ORIGINAL
        # AMS ignores storage: it will happily use a B4-risk AP.
        with_bad_ap = strategy.decide(
            ctx(ap=SmartApInfo.default_for(NEWIFI),
                bandwidth=mbps(20.0)),
            "abc123", Protocol.BITTORRENT)
        assert with_bad_ap.action is Action.SMART_AP
        unpopular = AmsStrategy(make_db(popularity=3, cached=True))
        assert unpopular.decide(ctx(), "abc123",
                                Protocol.BITTORRENT).action is \
            Action.CLOUD

    def test_ams_http_popular_still_cloud(self):
        strategy = AmsStrategy(make_db(popularity=200, cached=True))
        decision = strategy.decide(ctx(), "abc123", Protocol.HTTP)
        assert decision.action is Action.CLOUD

    def test_odr_strategy_delegates(self):
        db = make_db(popularity=5, cached=True)
        strategy = OdrStrategy(OdrMiddleware(db))
        assert strategy.decide(ctx(), "abc123",
                               Protocol.BITTORRENT).action is \
            Action.CLOUD
        assert strategy.decide_after_predownload(
            ctx(), "abc123", success=False).action is \
            Action.NOTIFY_FAILURE

    def test_default_reask_behaviour(self):
        strategy = SmartApOnlyStrategy()
        success = strategy.decide_after_predownload(ctx(), "abc123",
                                                    True)
        assert success.action is Action.CLOUD
        failure = strategy.decide_after_predownload(ctx(), "abc123",
                                                    False)
        assert failure.action is Action.NOTIFY_FAILURE
