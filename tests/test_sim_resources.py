"""Tests for reservation pools and fair-share pools."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.resources import (
    CapacityExceeded,
    FairSharePool,
    ReservationPool,
)


class TestReservationPool:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ReservationPool(0.0)

    def test_reserve_and_release_roundtrip(self):
        pool = ReservationPool(100.0)
        reservation = pool.reserve(40.0, now=0.0)
        assert pool.committed == 40.0
        assert pool.available == 60.0
        reservation.release(now=5.0)
        assert pool.committed == 0.0

    def test_over_capacity_raises_and_counts(self):
        pool = ReservationPool(100.0)
        pool.reserve(80.0, now=0.0)
        with pytest.raises(CapacityExceeded):
            pool.reserve(30.0, now=1.0)
        assert pool.rejections == 1
        assert pool.admissions == 1

    def test_try_reserve_returns_none_when_full(self):
        pool = ReservationPool(10.0)
        assert pool.try_reserve(8.0, now=0.0) is not None
        assert pool.try_reserve(5.0, now=0.0) is None

    def test_exact_fit_is_admitted(self):
        pool = ReservationPool(10.0)
        assert pool.try_reserve(10.0, now=0.0) is not None
        assert pool.available == 0.0

    def test_negative_rate_rejected(self):
        pool = ReservationPool(10.0)
        with pytest.raises(ValueError):
            pool.reserve(-1.0, now=0.0)

    def test_double_release_is_idempotent(self):
        pool = ReservationPool(10.0)
        reservation = pool.reserve(4.0, now=0.0)
        reservation.release(1.0)
        reservation.release(2.0)
        assert pool.committed == 0.0

    def test_unmetered_pool_always_admits(self):
        pool = ReservationPool(None)
        for _ in range(10):
            pool.reserve(1e12, now=0.0)
        assert pool.available == float("inf")

    def test_peak_committed_tracks_high_water_mark(self):
        pool = ReservationPool(100.0)
        first = pool.reserve(60.0, now=0.0)
        pool.reserve(30.0, now=1.0)
        first.release(now=2.0)
        assert pool.peak_committed == 90.0
        assert pool.committed == 30.0

    def test_binned_usage_integrates_step_function_exactly(self):
        pool = ReservationPool(100.0)
        # 10 B/s over [0, 10), then 30 B/s over [10, 20).
        first = pool.reserve(10.0, now=0.0)
        pool._record(0.0)
        second = pool.reserve(20.0, now=10.0)
        first.release(now=20.0)
        second.release(now=20.0)
        usage = pool.binned_usage(bin_width=10.0, horizon=30.0)
        assert usage == pytest.approx([10.0, 30.0, 0.0])

    def test_binned_usage_handles_partial_bin_overlap(self):
        pool = ReservationPool(100.0)
        # 10 B/s held over [5, 15): half of each 10-second bin.
        reservation = pool.reserve(10.0, now=5.0)
        reservation.release(now=15.0)
        usage = pool.binned_usage(bin_width=10.0, horizon=20.0)
        assert usage == pytest.approx([5.0, 5.0])

    def test_binned_usage_validates_bin_width(self):
        pool = ReservationPool(10.0)
        with pytest.raises(ValueError):
            pool.binned_usage(0.0, 10.0)

    @given(rates=st.lists(st.floats(min_value=0.1, max_value=30.0),
                          min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_committed_never_exceeds_capacity(self, rates):
        pool = ReservationPool(100.0)
        held = []
        for index, rate in enumerate(rates):
            reservation = pool.try_reserve(rate, now=float(index))
            if reservation is not None:
                held.append(reservation)
            assert 0.0 <= pool.committed <= pool.capacity + 1e-9
        for index, reservation in enumerate(held):
            reservation.release(now=100.0 + index)
        assert pool.committed == pytest.approx(0.0, abs=1e-9)


class TestFairSharePool:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FairSharePool(0.0)

    def test_single_flow_gets_min_of_demand_and_capacity(self):
        pool = FairSharePool(100.0)
        flow = pool.add_flow(demand=40.0)
        assert pool.share_of(flow) == 40.0
        big = pool.add_flow(demand=1000.0)
        assert pool.share_of(big) == 60.0

    def test_equal_demands_split_equally(self):
        pool = FairSharePool(90.0)
        flows = [pool.add_flow(demand=100.0) for _ in range(3)]
        assert [pool.share_of(f) for f in flows] == \
            pytest.approx([30.0, 30.0, 30.0])

    def test_small_flow_keeps_demand_and_rest_is_redistributed(self):
        pool = FairSharePool(100.0)
        small = pool.add_flow(demand=10.0)
        big_a = pool.add_flow(demand=1000.0)
        big_b = pool.add_flow(demand=1000.0)
        assert pool.share_of(small) == pytest.approx(10.0)
        assert pool.share_of(big_a) == pytest.approx(45.0)
        assert pool.share_of(big_b) == pytest.approx(45.0)

    def test_removing_a_flow_reallocates(self):
        pool = FairSharePool(100.0)
        first = pool.add_flow(demand=1000.0)
        second = pool.add_flow(demand=1000.0)
        pool.remove_flow(first)
        assert pool.share_of(second) == pytest.approx(100.0)

    def test_negative_demand_rejected(self):
        pool = FairSharePool(10.0)
        with pytest.raises(ValueError):
            pool.add_flow(demand=-5.0)

    @given(demands=st.lists(st.floats(min_value=0.0, max_value=500.0),
                            min_size=1, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_max_min_fairness_invariants(self, demands):
        pool = FairSharePool(100.0)
        flows = [pool.add_flow(demand=d) for d in demands]
        shares = [pool.share_of(f) for f in flows]
        # No flow exceeds its demand; total never exceeds capacity.
        for share, demand in zip(shares, demands):
            assert share <= demand + 1e-9
        assert sum(shares) <= pool.capacity + 1e-6
        # Work-conserving: either all demand is met or capacity is full.
        if sum(demands) >= pool.capacity:
            assert sum(shares) == pytest.approx(pool.capacity)
        else:
            assert shares == pytest.approx(demands)
        # Max-min: an unsatisfied flow's share is >= every other share
        # (minus epsilon), i.e. nobody smaller is starved for its sake.
        for share, demand in zip(shares, demands):
            if share < demand - 1e-9:
                assert all(share >= other - 1e-6 for other in shares)
