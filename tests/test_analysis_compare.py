"""Tests for distribution comparison (KS, quantile ratios, verdicts)."""

import numpy as np
import pytest

from repro.analysis.cdf import empirical_cdf
from repro.analysis.compare import (
    SimilarityVerdict,
    compare,
    ks_distance,
    quantile_ratios,
)


class TestKsDistance:
    def test_identical_samples_have_zero_distance(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert ks_distance(cdf, cdf) == 0.0

    def test_disjoint_samples_have_distance_one(self):
        low = empirical_cdf([1.0, 2.0, 3.0])
        high = empirical_cdf([10.0, 20.0, 30.0])
        assert ks_distance(low, high) == pytest.approx(1.0)

    def test_known_half_overlap(self):
        first = empirical_cdf([1.0, 2.0])
        second = empirical_cdf([2.0, 3.0])
        # At x=1: F1=0.5, F2=0 -> distance 0.5.
        assert ks_distance(first, second) == pytest.approx(0.5)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = empirical_cdf(rng.normal(0, 1, 200))
        b = empirical_cdf(rng.normal(0.5, 1.2, 300))
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_matches_scipy(self):
        from scipy.stats import ks_2samp
        rng = np.random.default_rng(1)
        x = rng.exponential(2.0, 250)
        y = rng.exponential(2.5, 180)
        ours = ks_distance(empirical_cdf(x), empirical_cdf(y))
        assert ours == pytest.approx(ks_2samp(x, y).statistic)


class TestQuantileRatios:
    def test_scaling_shows_up_in_every_quantile(self):
        rng = np.random.default_rng(2)
        base = rng.lognormal(0, 1, 500)
        ratios = quantile_ratios(empirical_cdf(2.0 * base),
                                 empirical_cdf(base))
        for value in ratios.values():
            assert value == pytest.approx(2.0)

    def test_zero_denominator_is_infinite(self):
        ratios = quantile_ratios(empirical_cdf([1.0]),
                                 empirical_cdf([0.0]),
                                 quantiles=(0.5,))
        assert ratios[0.5] == float("inf")


class TestVerdicts:
    def test_similar_distributions(self):
        rng = np.random.default_rng(3)
        base = rng.lognormal(3, 1, 800)
        tweaked = base * rng.uniform(0.9, 1.1, 800)
        verdict = compare(empirical_cdf(tweaked), empirical_cdf(base))
        assert verdict.similar_bodies
        assert not verdict.truncated_tail

    def test_the_fig13_signature(self, ap_report, cloud_result):
        """AP vs cloud pre-download speeds: similar bodies, AP tail
        truncated by the write-path ceiling -- quantified."""
        verdict = compare(ap_report.speed_cdf(),
                          cloud_result.attempt_speed_cdf())
        assert verdict.similar_bodies
        assert verdict.truncated_tail

    def test_dissimilar_distributions(self):
        verdict = compare(empirical_cdf([1.0, 2.0, 3.0]),
                          empirical_cdf([100.0, 200.0, 300.0]))
        assert not verdict.similar_bodies
