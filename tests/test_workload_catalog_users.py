"""Tests for the file catalog, quota decks, and the user population."""

from collections import Counter

import numpy as np
import pytest

from repro.netsim.isp import ISP, default_registry
from repro.netsim.ip import IpResolver
from repro.transfer.protocols import Protocol
from repro.workload.catalog import FileCatalog, PROTOCOL_MIX, QuotaDeck
from repro.workload.filetypes import FileType
from repro.workload.users import UserPopulation


class TestQuotaDeck:
    def test_exact_proportions_per_deck_cycle(self):
        deck = QuotaDeck(("a", "b"), (0.7, 0.3), deck_size=10)
        rng = np.random.default_rng(0)
        draws = Counter(deck.draw(rng) for _ in range(10))
        assert draws == {"a": 7, "b": 3}

    def test_reshuffles_after_exhaustion(self):
        deck = QuotaDeck(("a", "b"), (0.5, 0.5), deck_size=4)
        rng = np.random.default_rng(1)
        draws = Counter(deck.draw(rng) for _ in range(40))
        assert draws == {"a": 20, "b": 20}

    def test_validation(self):
        with pytest.raises(ValueError):
            QuotaDeck((), ())
        with pytest.raises(ValueError):
            QuotaDeck(("a",), (0.5, 0.5))


class TestFileCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        catalog = FileCatalog()
        catalog.generate(3000, np.random.default_rng(2))
        return catalog

    def test_generation_count_and_uniqueness(self, catalog):
        assert len(catalog) == 3000
        assert len({record.file_id for record in catalog}) == 3000

    def test_protocol_mix_is_stratified(self, catalog):
        counts = Counter(record.protocol for record in catalog)
        for protocol, share in PROTOCOL_MIX:
            assert counts[protocol] / len(catalog) == \
                pytest.approx(share, abs=0.01)

    def test_source_urls_carry_protocol_and_id(self, catalog):
        for record in list(catalog)[:50]:
            assert record.source_url == \
                f"{record.protocol.value}://origin/{record.file_id}"

    def test_type_mix(self, catalog):
        counts = Counter(record.file_type for record in catalog)
        video_share = counts[FileType.VIDEO] / len(catalog)
        assert video_share == pytest.approx(0.75, abs=0.03)

    def test_indexing(self, catalog):
        record = next(iter(catalog))
        assert catalog[record.file_id] is record
        assert catalog.get(record.file_id) is record
        assert catalog.get("missing") is None

    def test_total_demand_consistency(self, catalog):
        assert catalog.total_demand() == catalog.demands().sum()

    def test_class_shares_sum_to_one(self, catalog):
        assert sum(catalog.class_file_shares().values()) == \
            pytest.approx(1.0)
        assert sum(catalog.class_request_shares().values()) == \
            pytest.approx(1.0)

    def test_negative_count_rejected(self, catalog):
        with pytest.raises(ValueError):
            catalog.generate(-1, np.random.default_rng(3))


class TestUserPopulation:
    @pytest.fixture(scope="class")
    def population(self):
        population = UserPopulation()
        population.generate(2000, np.random.default_rng(4))
        return population

    def test_count_and_unique_ids(self, population):
        assert len(population) == 2000
        assert len({user.user_id for user in population.users}) == 2000

    def test_ip_resolves_to_claimed_isp(self, population):
        resolver = IpResolver()
        for user in population.users[:200]:
            assert resolver.resolve(user.ip_address) is user.isp

    def test_isp_shares_roughly_match_registry(self, population):
        counts = Counter(user.isp for user in population.users)
        shares = default_registry().population_shares()
        for isp, share in shares.items():
            assert counts[isp] / len(population) == \
                pytest.approx(share, abs=0.035)

    def test_reported_bandwidth_respects_flag(self, population):
        for user in population.users[:200]:
            if user.reports_bandwidth:
                assert user.reported_bandwidth == user.access_bandwidth
            else:
                assert user.reported_bandwidth is None

    def test_report_probability_calibration(self, population):
        reporting = sum(1 for user in population.users
                        if user.reports_bandwidth)
        assert reporting / len(population) == pytest.approx(0.7,
                                                            abs=0.04)

    def test_sampling_requires_population(self):
        empty = UserPopulation()
        with pytest.raises(RuntimeError):
            empty.sample_user(np.random.default_rng(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            UserPopulation(report_probability=1.5)
