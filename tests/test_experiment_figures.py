"""Per-builder tests for the paper-figure renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.context import ExperimentContext
from repro.experiments import figures


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(scale=0.0015, seed=20150222)


def render(builder, context) -> str:
    svg = builder(context).render()
    ET.fromstring(svg)   # well-formed XML
    return svg


class TestFigureBuilders:
    def test_fig05_is_a_single_cdf(self, context):
        svg = render(figures.fig05, context)
        assert "Figure 5" in svg
        assert svg.count("<path") == 1

    def test_fig06_has_scatter_and_fit(self, context):
        svg = render(figures.fig06, context)
        assert "Zipf" in svg
        assert "<circle" in svg and "stroke-dasharray" in svg

    def test_fig07_reports_the_se_exponent(self, context):
        svg = render(figures.fig07, context)
        assert "SE fit (c=" in svg

    def test_fig08_overlays_three_cdfs(self, context):
        svg = render(figures.fig08, context)
        for label in ("Pre-downloading", "Fetching", "End-to-End"):
            assert label in svg
        assert svg.count("<path") == 3

    def test_fig11_has_capacity_line_and_two_series(self, context):
        svg = render(figures.fig11, context)
        assert "30 Gbps" in svg
        assert "Highly Popular" in svg

    def test_fig13_overlays_cloud_and_aps(self, context):
        svg = render(figures.fig13, context)
        assert "Cloud-based" in svg and "Smart APs" in svg

    def test_fig16_renders_paired_bars(self, context):
        svg = render(figures.fig16, context)
        # Two bar series over four bottlenecks: 8 bars + background.
        assert svg.count("<rect") >= 9
        assert "ODR" in svg

    def test_fig17_overlays_odr_and_xuanfeng(self, context):
        svg = render(figures.fig17, context)
        assert "ODR middleware" in svg and "Xuanfeng users" in svg

    def test_registry_is_complete(self):
        expected = {"fig05", "fig06", "fig07", "fig08", "fig09",
                    "fig10", "fig11", "fig13", "fig14", "fig16",
                    "fig17"}
        assert set(figures.FIGURES) == expected
