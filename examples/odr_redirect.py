#!/usr/bin/env python3
"""The section 6 study: ODR against every baseline strategy.

First walks a few illustrative users through the ODR web service
(showing the Figure 15 decisions and their rationales), then replays the
full benchmark sample through ODR and the four baselines and prints the
bottleneck scoreboard.

Run with::

    python examples/odr_redirect.py
"""

from repro import (
    AlwaysHybridStrategy,
    AmsStrategy,
    CloudConfig,
    CloudOnlyStrategy,
    OdrMiddleware,
    OdrService,
    OdrStrategy,
    ReplayEvaluator,
    SmartApOnlyStrategy,
    WorkloadConfig,
    WorkloadGenerator,
    XuanfengCloud,
    sample_benchmark_requests,
)
from repro.analysis.tables import TextTable
from repro.ap import HIWIFI_1S, NEWIFI
from repro.core import SmartApInfo, UserContext
from repro.sim.clock import kbps, mbps
from repro.storage import Filesystem, USB_FLASH_8GB
from repro.workload.popularity import PopularityClass

SCALE = 0.01


def showcase_decisions(service: OdrService, workload) -> None:
    """A few users, a few files: what does ODR tell each of them?"""
    by_class = {}
    for record in workload.catalog:
        by_class.setdefault(record.popularity_class, record)
        if record.popularity_class is PopularityClass.HIGHLY_POPULAR \
                and record.is_p2p:
            by_class["hot-p2p"] = record
    hot = by_class.get("hot-p2p",
                       by_class[PopularityClass.HIGHLY_POPULAR])
    cold = by_class[PopularityClass.UNPOPULAR]

    scenarios = [
        ("fiber user, NTFS-flash Newifi, hot P2P file",
         UserContext("u-fiber", workload.users[0].ip_address, mbps(20.0),
                     SmartApInfo(NEWIFI, USB_FLASH_8GB,
                                 Filesystem.NTFS)),
         hot),
        ("rural user on a 0.5 Mbps line, HiWiFi, cached file",
         UserContext("u-rural", workload.users[1].ip_address, kbps(62.5),
                     SmartApInfo.default_for(HIWIFI_1S)),
         cold),
        ("no smart AP, unpopular file",
         UserContext("u-plain", workload.users[2].ip_address, mbps(4.0)),
         cold),
    ]
    for label, context, record in scenarios:
        response = service.handle_request(context, record.source_url)
        print(f"* {label}\n    -> {response.explanation}\n")


def scoreboard(workload, cloud) -> None:
    sample = sample_benchmark_requests(workload, 1000)
    evaluator = ReplayEvaluator(workload.catalog, cloud.database)
    strategies = [
        OdrStrategy(OdrMiddleware(cloud.database)),
        CloudOnlyStrategy(cloud.database),
        SmartApOnlyStrategy(),
        AlwaysHybridStrategy(cloud.database),
        AmsStrategy(cloud.database),
    ]
    results = {strategy.name: evaluator.replay(sample, strategy)
               for strategy in strategies}
    baseline = results["cloud-only"]

    table = TextTable(
        ["strategy", "impeded (B1)", "cloud bytes (B2)",
         "unpopular fail (B3)", "write-path limited (B4)",
         "fetch median KBps"],
        ["", ".1%", ".0%", ".1%", ".1%", ".0f"])
    for name, result in results.items():
        table.add_row(
            name, result.impeded_share,
            result.cloud_bandwidth_bytes /
            max(baseline.cloud_bandwidth_bytes, 1.0),
            result.unpopular_failure_ratio,
            result.write_path_limited_share,
            result.fetch_speed_cdf().median / 1e3)
    print(table.render())
    odr = results["odr"]
    print(f"\nODR route mix: {odr.route_mix()}")
    print(f"ODR wrong decisions: {odr.wrong_decision_share:.2%} "
          f"(paper: <1%)")


def main() -> None:
    workload = WorkloadGenerator(WorkloadConfig(scale=SCALE)).generate()
    cloud = XuanfengCloud(CloudConfig(scale=SCALE))
    cloud.run(workload)   # populates the content DB and the cache state

    print("== ODR decision showcase ==\n")
    showcase_decisions(OdrService(cloud.database), workload)

    print("== strategy scoreboard over the 1000-request sample ==\n")
    scoreboard(workload, cloud)


if __name__ == "__main__":
    main()
