#!/usr/bin/env python3
"""The section 3 study: workload characteristics of offline downloading.

Reproduces the trace analysis -- type mix, size CDF (Figure 5), protocol
mix, and the Zipf-vs-SE popularity fitting (Figures 6 and 7) -- and
optionally writes the SVG figures.

Run with::

    python examples/trace_study.py [outdir]
"""

import sys
from collections import Counter
from pathlib import Path

import numpy as np

from repro import WorkloadConfig, WorkloadGenerator
from repro.analysis.cdf import empirical_cdf
from repro.analysis.fitting import fit_se, fit_zipf
from repro.analysis.tables import TextTable
from repro.workload.popularity import PopularityClass, \
    rank_popularity_curve

SCALE = 0.01


def main(outdir: str | None = None) -> None:
    workload = WorkloadGenerator(WorkloadConfig(scale=SCALE)).generate()
    requests = workload.requests
    catalog = workload.catalog
    print(f"synthetic trace: {len(requests)} tasks, {len(catalog)} "
          f"unique files, {len(workload.users)} users\n")

    # File types (paper: 75% video, 15% software).
    print("== request type mix ==")
    counts = Counter(request.file_type.value for request in requests)
    for name, count in counts.most_common():
        print(f"  {name:<10s} {count / len(requests):6.1%}")

    # Protocols (paper: 68% BitTorrent, 19% eMule, 13% HTTP/FTP).
    print("\n== protocol mix ==")
    protocols = Counter(request.protocol.value for request in requests)
    for name, count in protocols.most_common():
        print(f"  {name:<12s} {count / len(requests):6.1%}")

    # Figure 5.
    sizes = empirical_cdf([record.size for record in catalog])
    print("\n== file sizes (Figure 5) ==")
    print("  " + sizes.describe(scale=1e6, unit=" MB"))
    print(f"  below 8 MB: {sizes.probability_below(8e6):.1%} "
          f"(paper: up to 25%)")

    # Popularity classes.
    print("\n== popularity classes ==")
    table = TextTable(["class", "files", "requests"], ["", ".1%", ".1%"])
    file_shares = catalog.class_file_shares()
    request_shares = catalog.class_request_shares()
    for klass in PopularityClass:
        table.add_row(klass.value, file_shares[klass],
                      request_shares[klass])
    print("\n".join("  " + line for line in
                    table.render().splitlines()))

    # Figures 6 and 7.
    ranks, popularity = rank_popularity_curve(catalog.demands())
    zipf = fit_zipf(ranks, popularity)
    se = fit_se(ranks, popularity)
    print("\n== popularity fitting (Figures 6-7) ==")
    print(f"  Zipf: a={zipf.a:.3f} b={zipf.b:.3f}  "
          f"avg rel err {zipf.average_relative_error:.1%}")
    print(f"  SE:   a={se.a:.4f} b={se.b:.3f} c={se.c:g}  "
          f"avg rel err {se.average_relative_error:.1%}")
    winner = "SE" if se.average_relative_error < \
        zipf.average_relative_error else "Zipf"
    print(f"  -> {winner} fits better (the paper: SE, because of "
          f"fetch-at-most-once)")

    if outdir:
        from repro.experiments.context import ExperimentContext
        from repro.experiments.figures import render_all
        context = ExperimentContext(scale=SCALE)
        written = render_all(context, Path(outdir))
        print(f"\nwrote {len(written)} SVG figures to {outdir}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
