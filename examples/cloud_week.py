#!/usr/bin/env python3
"""The section 4 study: one week through the cloud-based system.

Reproduces the cloud-side analysis -- speed/delay distributions, the
impeded-fetch breakdown, and the Figure 11 bandwidth-burden series with
its day-7 capacity crunch.

Run with::

    python examples/cloud_week.py [scale]
"""

import sys

from repro import CloudConfig, WorkloadConfig, WorkloadGenerator, \
    XuanfengCloud
from repro.analysis.tables import TextTable
from repro.sim.clock import DAY, MINUTE, to_gbps


def main(scale: float = 0.02) -> None:
    workload = WorkloadGenerator(WorkloadConfig(scale=scale)).generate()
    cloud = XuanfengCloud(CloudConfig(scale=scale))
    result = cloud.run(workload)

    print(f"== one synthetic week at scale {scale} "
          f"({len(workload.requests)} tasks) ==\n")

    table = TextTable(["distribution", "median", "mean", "max"],
                      ["", ".1f", ".1f", ".0f"])
    pre_speed = result.attempt_speed_cdf()
    fetch_speed = result.fetch_speed_cdf()
    table.add_row("pre-download speed (KBps)", pre_speed.median / 1e3,
                  pre_speed.mean / 1e3, pre_speed.max / 1e3)
    table.add_row("fetch speed (KBps)", fetch_speed.median / 1e3,
                  fetch_speed.mean / 1e3, fetch_speed.max / 1e3)
    pre_delay = result.attempt_delay_cdf()
    fetch_delay = result.fetch_delay_cdf()
    table.add_row("pre-download delay (min)", pre_delay.median / MINUTE,
                  pre_delay.mean / MINUTE, pre_delay.max / MINUTE)
    table.add_row("fetch delay (min)", fetch_delay.median / MINUTE,
                  fetch_delay.mean / MINUTE, fetch_delay.max / MINUTE)
    print(table.render())

    print(f"\ncache hit ratio: {result.cache_hit_ratio:.1%}   "
          f"request failures: {result.request_failure_ratio:.1%}   "
          f"rejected fetches: {result.rejection_ratio:.2%}")

    print(f"\nimpeded fetches (< 125 KBps): "
          f"{result.impeded_fetch_share:.1%}, caused by:")
    for cause, share in result.impeded_breakdown().items():
        print(f"  {cause:<24s} {share:6.1%}")

    # Figure 11: upload-bandwidth burden by day, rescaled to paper units.
    print("\nupload-bandwidth burden (rescaled to the real population):")
    total = result.bandwidth_series()
    highly = result.bandwidth_series(only_highly_popular=True)
    bins_per_day = int(DAY / 300.0)
    bars = TextTable(["day", "avg Gbps", "peak Gbps", "highly-popular %",
                      "sparkline"], ["d", ".1f", ".1f", ".0%", ""])
    for day in range(7):
        sl = slice(day * bins_per_day, (day + 1) * bins_per_day)
        day_total, day_highly = total[sl], highly[sl]
        peak = to_gbps(day_total.max()) / scale
        spark = "#" * int(peak)
        bars.add_row(day + 1, to_gbps(day_total.mean()) / scale, peak,
                     float(day_highly.sum() / max(day_total.sum(), 1)),
                     spark)
    print(bars.render())
    print("(purchased capacity: 30 Gbps -- the final days pierce it, "
          "forcing rejections)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
