#!/usr/bin/env python3
"""Quickstart: synthesise a small week, run the cloud, ask ODR for advice.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CloudConfig,
    OdrService,
    WorkloadConfig,
    WorkloadGenerator,
    XuanfengCloud,
)
from repro.core import SmartApInfo, UserContext
from repro.ap import NEWIFI
from repro.sim.clock import format_duration, mbps

SCALE = 0.003   # ~1,700 files, ~12,000 tasks: runs in a few seconds


def main() -> None:
    # 1. A synthetic measurement week (the paper's proprietary trace,
    #    statistically reproduced).
    workload = WorkloadGenerator(WorkloadConfig(scale=SCALE)).generate()
    print(f"synthetic week: {len(workload.requests)} tasks, "
          f"{len(workload.catalog)} unique files, "
          f"{len(workload.users)} users")

    # 2. Replay it through the cloud-based system.
    cloud = XuanfengCloud(CloudConfig(scale=SCALE))
    result = cloud.run(workload)
    print(f"cache hit ratio:       {result.cache_hit_ratio:.1%}")
    print(f"pre-download failures: {result.request_failure_ratio:.1%} "
          f"of requests")
    fetch = result.fetch_speed_cdf()
    print(f"fetch speed:           median "
          f"{fetch.median / 1e3:.0f} KBps, mean "
          f"{fetch.mean / 1e3:.0f} KBps")
    delay = result.e2e_delay_cdf()
    print(f"end-to-end delay:      median "
          f"{format_duration(delay.median)}, mean "
          f"{format_duration(delay.mean)}")

    # 3. Ask the ODR middleware where a download should run.
    service = OdrService(cloud.database)
    some_file = max(workload.catalog, key=lambda f: f.weekly_demand)
    user = UserContext(user_id="alice",
                       ip_address=workload.users[0].ip_address,
                       access_bandwidth=mbps(20.0),
                       smart_ap=SmartApInfo.default_for(NEWIFI))
    response = service.handle_request(user, some_file.source_url)
    print(f"\nODR consulted for the most popular file "
          f"({some_file.weekly_demand} requests/week, "
          f"{some_file.protocol.value}):")
    print(f"  {response.explanation}")


if __name__ == "__main__":
    main()
