#!/usr/bin/env python3
"""The section 5 study: benchmarking the three smart APs.

Replays a 1000-request Unicom sample on HiWiFi, MiWiFi, and Newifi
(sequentially, throttled to each request's recorded access bandwidth),
then reruns the Table 2 protocol: top-10 popular requests, unthrottled,
across storage devices and filesystems.

Run with::

    python examples/ap_benchmark.py
"""

from repro import WorkloadConfig, WorkloadGenerator, \
    sample_benchmark_requests
from repro.analysis.tables import TextTable
from repro.ap import ApBenchmarkRig, NEWIFI, SmartAP
from repro.sim.clock import MINUTE
from repro.storage import Filesystem, USB_FLASH_8GB, USB_HDD_5400


def main() -> None:
    workload = WorkloadGenerator(WorkloadConfig(scale=0.01)).generate()
    sample = sample_benchmark_requests(workload, 1000)
    rig = ApBenchmarkRig(workload.catalog)

    print("== replaying 1000 sampled Unicom requests on three APs ==\n")
    report = rig.replay(sample)
    table = TextTable(["AP", "tasks", "failure", "unpopular failure",
                       "median speed (KBps)", "median delay (min)"],
                      ["", "d", ".1%", ".1%", ".0f", ".0f"])
    for name in report.ap_names():
        sub = report.for_ap(name)
        table.add_row(name, len(sub.results), sub.failure_ratio,
                      sub.unpopular_failure_ratio,
                      sub.speed_cdf().median / 1e3,
                      sub.delay_cdf().median / MINUTE)
    table.add_row("ALL", len(report.results), report.failure_ratio,
                  report.unpopular_failure_ratio,
                  report.speed_cdf().median / 1e3,
                  report.delay_cdf().median / MINUTE)
    print(table.render())

    print("\nfailure causes:")
    for cause, share in report.failure_cause_breakdown().items():
        print(f"  {cause:<26s} {share:6.1%}")

    print("\n== Table 2 protocol: Newifi, unthrottled top-10 popular ==\n")
    matrix = TextTable(["device", "filesystem", "max speed (MBps)",
                        "iowait"], ["", "", ".2f", ".1%"])
    for device in (USB_FLASH_8GB, USB_HDD_5400):
        for filesystem in (Filesystem.FAT, Filesystem.NTFS,
                           Filesystem.EXT4):
            ap = SmartAP(NEWIFI, device=device, filesystem=filesystem)
            replay = rig.replay_top_popular(sample, ap)
            matrix.add_row(device.name, filesystem.value,
                           replay.max_speed() / 1e6,
                           replay.peak_iowait())
    print(matrix.render())
    print("\n(the NTFS rows show the FUSE-driver CPU ceiling; the flash "
          "rows show the small-write iowait penalty)")


if __name__ == "__main__":
    main()
