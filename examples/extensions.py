#!/usr/bin/env python3
"""The section 6.1 refinements, demonstrated end to end.

The paper closes its ODR discussion with three directions this library
implements in full:

1. **LEDBAT** (RFC 6817) -- run the cloud's swarm-seeding traffic as a
   background scavenger that yields to fetch traffic;
2. **BBA** (Huang et al.) -- replace the hard 125 KBps streaming rule
   with buffer-based adaptation;
3. **Pre-staging** (Finamore et al.) -- defer elastic downloads into
   the burden troughs and flatten the Figure 11 peak.

Run with::

    python examples/extensions.py
"""

import numpy as np

from repro import CloudConfig, WorkloadConfig, WorkloadGenerator, \
    XuanfengCloud
from repro.analysis.timeseries import bin_rate_series
from repro.core.bba import simulate_playback, streaming_verdict
from repro.core.prestaging import PrestagingScheduler, \
    deferrable_from_flows
from repro.paper import IMPEDED_FETCH_THRESHOLD
from repro.sim.clock import DAY, HOUR, kbps, to_gbps
from repro.transfer.ledbat import BottleneckLink, simulate_scavenging

SCALE = 0.01
BIN = 300.0


def main() -> None:
    workload = WorkloadGenerator(WorkloadConfig(scale=SCALE)).generate()
    result = XuanfengCloud(CloudConfig(scale=SCALE)).run(workload)
    print(f"simulated week ready: {len(result.tasks)} tasks\n")

    demo_ledbat(result)
    demo_bba(result)
    demo_prestaging(result)


def demo_ledbat(result) -> None:
    print("== 1. LEDBAT seeding on the upload links ==")
    capacity = result.config.scaled_upload_capacity
    series = result.bandwidth_series(BIN)
    day = series[5 * int(DAY / BIN):6 * int(DAY / BIN)]
    profile = list(np.repeat(day, 10))
    link = BottleneckLink(capacity=capacity, propagation_delay=0.03,
                          max_queue_bytes=0.5 * capacity)
    scavenge = simulate_scavenging(link, profile, step=0.1)
    rates = np.array(scavenge.ledbat_rate_series)
    fg = np.repeat(day, 10)
    idle = rates[fg < 0.5 * capacity].mean()
    busy = rates[fg > 0.8 * capacity].mean() \
        if (fg > 0.8 * capacity).any() else 0.0
    print(f"  seeding in troughs: {to_gbps(idle) / SCALE:5.1f} Gbps "
          f"(of {to_gbps(capacity) / SCALE:.0f} purchased)")
    print(f"  seeding at peak:    {to_gbps(busy) / SCALE:5.1f} Gbps "
          f"(yields to fetch traffic)")
    print(f"  extra queueing delay: "
          f"{scavenge.mean_queueing_delay * 1e3:.0f} ms mean\n")


def demo_bba(result) -> None:
    print("== 2. BBA streaming verdicts vs the hard 125 KBps rule ==")
    rng = np.random.default_rng(7)
    speeds = [record.average_speed for record in result.fetch_records
              if not record.rejected][:800]
    rescued = 0
    impeded = 0
    for speed in speeds:
        profile = speed * rng.uniform(0.7, 1.3, size=240)
        hard_ok = speed >= IMPEDED_FETCH_THRESHOLD
        if not hard_ok:
            impeded += 1
            if streaming_verdict(profile):
                rescued += 1
    print(f"  of {impeded} fetches the hard rule calls impeded, BBA "
          f"plays {rescued} smoothly at a lower bitrate rung "
          f"({rescued / max(impeded, 1):.0%})")
    session = simulate_playback([kbps(100.0)] * 600)
    print(f"  e.g. a steady 100 KBps fetch: "
          f"{session.rebuffer_ratio:.1%} rebuffering at "
          f"{session.mean_bitrate / 1e3:.0f} KBps mean bitrate\n")


def demo_prestaging(result) -> None:
    print("== 3. Pre-staging elastic downloads into the troughs ==")
    flows = [flow for flow in result.flows if not flow.rejected]
    slack = 8 * HOUR
    padded = result.horizon + slack
    week_bins = int(result.horizon / BIN)
    deferrables, leftovers = deferrable_from_flows(flows[::2], padded,
                                                   slack)
    base = bin_rate_series(
        [(f.start, f.end, f.rate) for f in flows[1::2] + leftovers],
        BIN, padded)
    scheduled = PrestagingScheduler(base, BIN).schedule(deferrables)
    naive = bin_rate_series([(f.start, f.end, f.rate) for f in flows],
                            BIN, result.horizon)
    staged_peak = scheduled.scheduled_series[:week_bins].max()
    print(f"  peak burden: {to_gbps(naive.max()) / SCALE:.1f} Gbps -> "
          f"{to_gbps(staged_peak) / SCALE:.1f} Gbps with 50% elastic "
          f"users and {slack / HOUR:.0f} h slack")
    print(f"  ({len(deferrables)} flows re-packed by water-filling)")


if __name__ == "__main__":
    main()
